"""Job executors: cooperative in-loop simulator and supervised process.

Both backends drive the same :class:`~repro.core.session.SolveSession`,
so a job's tour is bit-identical to a direct :func:`repro.core.solve`
with the same seed regardless of where it ran.  They differ only in
*where* the session advances:

* :func:`run_sim_job` steps the session on the asyncio event loop in
  bounded slices, yielding between slices — many jobs interleave on one
  thread, cancellation and budget checks happen at slice boundaries.
* :func:`run_process_job` runs the session in a spawned worker process
  and supervises it: incumbents stream back over a multiprocessing
  queue, every read carries a timeout, and a worker that dies without
  reporting surfaces as :class:`WorkerCrashed` — a *failed* job, never a
  hung one (the invariant RPL005 guards).

Outcome signalling is by exception: :class:`JobCancelled` and
:class:`BudgetExhausted` carry the partial result (when one exists) so
the service can keep the best tour found before the interruption.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import queue as queue_mod
from typing import Callable, Optional

from ..core.session import SolveSession

__all__ = [
    "BudgetExhausted",
    "JobCancelled",
    "WorkerCrashed",
    "run_sim_job",
    "run_process_job",
]

#: Scheduler steps per cooperative slice.  One step is already a full
#: EA iteration (kick + LK optimize + select) — milliseconds to
#: hundreds of milliseconds of work depending on n — so the asyncio
#: round-trip per slice is noise even at 1, and a larger slice only
#: adds event-loop latency for every other job and connection.
DEFAULT_SLICE_STEPS = 1

#: Timeout for each blocking read of the worker's result queue; between
#: reads the supervisor checks worker liveness.
DEFAULT_POLL_S = 0.2


class JobCancelled(Exception):
    """Job stopped by user request; ``partial`` may hold a result."""

    def __init__(self, partial=None):
        super().__init__("job cancelled")
        self.partial = partial


class BudgetExhausted(Exception):
    """Tenant's vsec allowance ran out mid-job."""

    def __init__(self, partial=None):
        super().__init__("tenant vsec budget exhausted")
        self.partial = partial


class WorkerCrashed(Exception):
    """Worker process died without delivering a result."""


def _drain_session(session: SolveSession):
    """Cancel and finalize a session; None when no node has a tour yet."""
    session.cancel()
    try:
        session.run_steps(1)
        return session.result()
    except RuntimeError:
        # Cancelled before any node's first selection step: there is no
        # tour to report, which the caller treats as "no partial result".
        return None


def _build_session(spec, instance, on_incumbent) -> SolveSession:
    kwargs = spec.kwargs
    kwargs.pop("_crash", None)
    return SolveSession(
        instance,
        spec.budget_vsec_per_node,
        n_nodes=spec.n_nodes,
        rng=spec.seed,
        on_incumbent=on_incumbent,
        **kwargs,
    )


async def run_sim_job(
    spec,
    instance,
    *,
    on_incumbent: Optional[Callable[[float, int, int], None]] = None,
    is_cancelled: Optional[Callable[[], bool]] = None,
    charge: Optional[Callable[[float], bool]] = None,
    slice_steps: int = DEFAULT_SLICE_STEPS,
):
    """Run a job cooperatively on the event loop; returns the result.

    ``charge(delta_vsec)`` is called once per slice with the virtual
    time consumed since the previous call; returning False stops the job
    with :class:`BudgetExhausted`.  ``is_cancelled()`` is polled at each
    slice boundary and raises :class:`JobCancelled`.
    """
    session = _build_session(spec, instance, on_incumbent)
    charged = 0.0
    while True:
        if is_cancelled is not None and is_cancelled():
            raise JobCancelled(_drain_session(session))
        done = session.run_steps(slice_steps)
        delta = session.consumed_vsec - charged
        charged = session.consumed_vsec
        within_budget = charge(delta) if charge is not None else True
        if done:
            return session.result()
        if not within_budget:
            raise BudgetExhausted(_drain_session(session))
        # Yield so other jobs (and the scheduler) get the loop.
        await asyncio.sleep(0)


def _process_worker(payload: dict, spec, out_queue, cmd_queue,
                    slice_steps: int = DEFAULT_SLICE_STEPS) -> None:
    """Worker-process entry point: solve in slices and stream results.

    Everything is reported through ``out_queue``: ``("incumbent", vsec,
    length, node_id)`` as the network best improves and ``("progress",
    delta_vsec)`` after every slice (the supervisor's metering signal),
    then exactly one of ``("done", run_doc)``, ``("stopped", run_doc |
    None)`` (graceful stop requested over ``cmd_queue``, carrying the
    partial result) or ``("error", message)``.  A ``_crash`` param
    hard-exits without reporting — the fault-injection hook the
    supervision tests use to simulate a segfaulting worker.
    """
    try:
        if spec.kwargs.get("_crash"):
            os._exit(3)
        from ..analysis.runio import run_to_json
        from ..tsp.instance import TSPInstance

        instance = TSPInstance.from_payload(payload)

        def on_incumbent(vsec: float, length: int, node_id: int) -> None:
            out_queue.put(("incumbent", float(vsec), int(length),
                           int(node_id)))

        session = _build_session(spec, instance, on_incumbent)
        reported = 0.0
        while True:
            done = session.run_steps(slice_steps)
            delta = session.consumed_vsec - reported
            reported = session.consumed_vsec
            if delta > 0.0:
                out_queue.put(("progress", float(delta)))
            if done:
                out_queue.put(
                    ("done", run_to_json(session.result(), instance.name))
                )
                return
            try:
                cmd_queue.get_nowait()
            except queue_mod.Empty:
                continue
            # Any command means "stop": drain to a partial result so the
            # tenant keeps the best tour its budget paid for.
            partial = _drain_session(session)
            out_queue.put((
                "stopped",
                run_to_json(partial, instance.name)
                if partial is not None else None,
            ))
            return
    except Exception as exc:  # pragma: no cover - exercised via supervision
        out_queue.put(("error", f"{type(exc).__name__}: {exc}"))


async def run_process_job(
    spec,
    instance,
    *,
    on_incumbent: Optional[Callable[[float, int, int], None]] = None,
    is_cancelled: Optional[Callable[[], bool]] = None,
    charge: Optional[Callable[[float], bool]] = None,
    poll_s: float = DEFAULT_POLL_S,
    slice_steps: int = DEFAULT_SLICE_STEPS,
):
    """Run a job in a supervised spawned process; returns the result.

    Budgeting is *metered*, exactly like the sim backend: the worker
    solves in ``slice_steps``-sized slices and reports ``("progress",
    delta_vsec)`` after each one; the supervisor charges the tenant per
    report, and on exhaustion sends a stop command so the worker drains
    gracefully to a partial result — :class:`BudgetExhausted` then
    carries the best tour the budget paid for.  (A cheap zero-charge
    probe still rejects already-exhausted tenants at admission.)
    Cancellation terminates the worker (no partial result).
    """
    from ..analysis.runio import run_from_json

    if charge is not None and not charge(0.0):
        raise BudgetExhausted(None)
    ctx = multiprocessing.get_context("spawn")
    out_queue = ctx.Queue()
    cmd_queue = ctx.Queue()
    proc = ctx.Process(
        target=_process_worker,
        args=(instance.to_payload(), spec, out_queue, cmd_queue,
              slice_steps),
        daemon=True,
    )
    # spawn-start pickles the payload and execs a fresh interpreter —
    # tens of milliseconds of blocking work that belongs off-loop.
    await asyncio.to_thread(proc.start)
    stop_requested = False
    try:
        while True:
            if is_cancelled is not None and is_cancelled():
                raise JobCancelled(None)
            try:
                msg = await asyncio.to_thread(out_queue.get, True, poll_s)
            except queue_mod.Empty:
                if proc.is_alive():
                    continue
                # Dead worker: drain anything it managed to enqueue
                # before exiting, then declare the crash.
                try:
                    msg = await asyncio.to_thread(out_queue.get, True, 0.1)
                except queue_mod.Empty:
                    raise WorkerCrashed(
                        f"worker exited with code {proc.exitcode} "
                        "before returning a result"
                    ) from None
            kind = msg[0]
            if kind == "incumbent":
                if on_incumbent is not None:
                    on_incumbent(msg[1], msg[2], msg[3])
            elif kind == "progress":
                overdrawn = charge is not None and not charge(msg[1])
                if overdrawn and not stop_requested:
                    # Pace the worker: ask for a graceful drain instead
                    # of terminating, so a partial result comes back.
                    cmd_queue.put("stop")
                    stop_requested = True
            elif kind == "stopped":
                partial = (
                    run_from_json(msg[1], instance)
                    if msg[1] is not None else None
                )
                raise BudgetExhausted(partial)
            elif kind == "done":
                # The run can finish between the last charge and a stop
                # request landing; a finished result always wins.
                return run_from_json(msg[1], instance)
            elif kind == "error":
                raise WorkerCrashed(f"worker failed: {msg[1]}")
            else:  # pragma: no cover - protocol guard
                raise WorkerCrashed(f"unknown worker message {kind!r}")
    finally:
        if proc.is_alive():
            proc.terminate()
        await asyncio.to_thread(proc.join, 5.0)
        out_queue.close()
        cmd_queue.close()
