"""Tests for messages and the simulated network."""

import numpy as np
import pytest

from repro.distributed.message import Message, MessageKind, tour_payload
from repro.distributed.network import LatencyModel, SimulatedNetwork
from repro.distributed.topology import hypercube, ring
from repro.tsp.tour import random_tour


class TestMessage:
    def test_tour_payload_snapshot_is_immutable_copy(self, small_instance, rng):
        t = random_tour(small_instance, rng)
        order, length = tour_payload(t)
        assert length == t.length
        t.reverse_segment(0, 10)  # mutating the tour leaves payload intact
        with pytest.raises(ValueError):
            order[0] = 99

    def test_size_bytes_scales_with_order(self):
        m1 = Message(MessageKind.TOUR, 0, 100, order=np.arange(10))
        m2 = Message(MessageKind.TOUR, 0, 100, order=np.arange(1000))
        assert m2.size_bytes() > m1.size_bytes()


class TestLatencyModel:
    def test_delay_positive_and_monotone(self):
        lm = LatencyModel(fixed_vsec=0.001, bytes_per_vsec=1e6)
        small = Message(MessageKind.TOUR, 0, 1, order=np.arange(10))
        big = Message(MessageKind.TOUR, 0, 1, order=np.arange(10_000))
        assert 0 < lm.delay(small) < lm.delay(big)


class TestSimulatedNetwork:
    def test_broadcast_reaches_only_neighbors(self):
        net = SimulatedNetwork(hypercube(8))
        count = net.broadcast(0, MessageKind.TOUR, 123, np.arange(5), sent_at=1.0)
        assert count == 3  # hypercube degree
        # Neighbours of 0 in a 3-cube: 1, 2, 4.
        for nbr in (1, 2, 4):
            msgs = net.collect(nbr, up_to=10.0)
            assert len(msgs) == 1 and msgs[0].length == 123
        for other in (3, 5, 6, 7):
            assert net.collect(other, up_to=10.0) == []

    def test_latency_delays_delivery(self):
        net = SimulatedNetwork(ring(4), LatencyModel(fixed_vsec=0.5,
                                                     bytes_per_vsec=1e12))
        net.broadcast(0, MessageKind.TOUR, 7, np.arange(4), sent_at=2.0)
        assert net.collect(1, up_to=2.4) == []
        got = net.collect(1, up_to=2.6)
        assert len(got) == 1

    def test_collect_is_destructive_and_ordered(self):
        net = SimulatedNetwork(ring(4))
        net.broadcast(0, MessageKind.TOUR, 10, np.arange(4), sent_at=1.0)
        net.broadcast(2, MessageKind.TOUR, 20, np.arange(4), sent_at=0.5)
        msgs = net.collect(1, up_to=100.0)
        assert [m.length for m in msgs] == [20, 10]  # arrival order
        assert net.collect(1, up_to=100.0) == []

    def test_stats_counters(self):
        net = SimulatedNetwork(hypercube(4))
        net.broadcast(0, MessageKind.TOUR, 5, np.arange(3), sent_at=0.0)
        net.broadcast(1, MessageKind.OPTIMUM_FOUND, 5, None, sent_at=1.0)
        s = net.stats
        assert s.broadcasts == 2
        assert s.tour_messages == 2  # degree-2 node 0 in 2-cube
        assert s.notification_messages == 2
        assert s.broadcast_log == [(0, 0.0)]

    def test_pending_and_earliest(self):
        net = SimulatedNetwork(ring(4), LatencyModel(fixed_vsec=1.0,
                                                     bytes_per_vsec=1e12))
        assert net.earliest_arrival(1) is None
        net.broadcast(0, MessageKind.TOUR, 5, np.arange(3), sent_at=0.0)
        assert net.pending(1) == 1
        assert net.earliest_arrival(1) == pytest.approx(1.0)

    def test_invalid_topology_rejected(self):
        with pytest.raises(ValueError):
            SimulatedNetwork({0: (1,), 1: ()})

    def test_gossip_counted_separately_from_broadcasts(self):
        # ``send`` (epidemic gossip push) must not inflate the
        # broadcast counters the analysis pipeline reads — it would
        # corrupt messages-per-improvement statistics.
        net = SimulatedNetwork(hypercube(4))
        net.broadcast(0, MessageKind.TOUR, 5, np.arange(3), sent_at=0.0)
        net.send(0, [1, 2], MessageKind.TOUR, 5, np.arange(3), sent_at=1.0)
        s = net.stats
        assert s.broadcasts == 1
        assert s.gossip_pushes == 1
        assert s.broadcast_log == [(0, 0.0)]
        assert s.gossip_log == [(0, 1.0)]
        assert s.messages == 4  # 2 neighbours + 2 explicit targets
        assert s.tour_messages == 4  # per-kind counters cover both paths
