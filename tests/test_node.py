"""Tests for the EA node (Figure 1 semantics)."""

import numpy as np
import pytest

from repro.core.events import EventKind
from repro.core.node import EANode, NodeConfig
from repro.distributed.message import Message, MessageKind


@pytest.fixture
def node(small_instance):
    return EANode(0, small_instance, NodeConfig(inner_kicks=2), rng=0)


def _bootstrap(node):
    """First compute+select pair (initial tour)."""
    work, cand = node.compute(budget_vsec=100.0)
    out = node.select(cand, [])
    return work, out


class TestBootstrap:
    def test_first_iteration_sets_best_and_broadcasts(self, node):
        work, out = _bootstrap(node)
        assert work > 0
        assert node.s_best is not None
        assert out.broadcast is node.s_best
        kinds = [e.kind for e in node.events]
        assert EventKind.INITIAL_TOUR in kinds
        assert EventKind.BROADCAST in kinds


class TestSelection:
    def test_no_improvement_increments_counter(self, node, small_instance):
        _bootstrap(node)
        # Feed a candidate equal to the current best: tie -> no improvement.
        out = node.select(node.s_best.copy(), [])
        assert not out.improved
        assert out.broadcast is None
        assert node.num_no_improvements == 1

    def test_received_better_tour_adopted_not_rebroadcast(self, node, small_instance):
        _bootstrap(node)
        better = node.s_best.copy()
        # Make a strictly better tour by LK with bigger candidate lists.
        from repro.localsearch import lin_kernighan, LKConfig

        lin_kernighan(better, LKConfig(neighbor_k=16, breadth=(8, 4, 2)))
        if better.length == node.s_best.length:
            pytest.skip("instance already at engine optimum")
        msg = Message(MessageKind.TOUR, sender=1, length=better.length,
                      order=np.asarray(better.order))
        worse_candidate = node.s_best.copy()
        out = node.select(worse_candidate, [msg])
        assert out.improved
        assert out.broadcast is None  # received tours are not re-broadcast
        assert node.s_best.length == better.length
        assert node.num_no_improvements == 0
        kinds = [e.kind for e in node.events]
        assert EventKind.RECEIVED_IMPROVEMENT in kinds

    def test_local_better_candidate_broadcast(self, node):
        _bootstrap(node)
        # Fabricate a strictly better local candidate by reusing best and
        # pretending CLK improved it (simplest: shrink via real LK or skip).
        cand = node.s_best.copy()
        from repro.localsearch import lin_kernighan, LKConfig

        lin_kernighan(cand, LKConfig(neighbor_k=16, breadth=(8, 4, 2)))
        if cand.length == node.s_best.length:
            pytest.skip("instance already at engine optimum")
        out = node.select(cand, [])
        assert out.improved and out.broadcast is cand

    def test_optimum_notification_terminates(self, node):
        _bootstrap(node)
        msg = Message(MessageKind.OPTIMUM_FOUND, sender=3, length=1)
        out = node.select(node.s_best.copy(), [msg])
        assert out.done_reason == "notified"
        assert node.done

    def test_target_reached_terminates(self, small_instance):
        node = EANode(
            0, small_instance,
            NodeConfig(inner_kicks=2, target_length=10**9), rng=0,
        )
        _, out = _bootstrap(node)
        assert out.done_reason == "optimum"
        assert node.done_reason == "optimum"


class TestPerturbation:
    def test_strength_grows_with_no_improvements(self, small_instance):
        cfg = NodeConfig(inner_kicks=0, c_v=4, c_r=100)
        node = EANode(0, small_instance, cfg, rng=1)
        _bootstrap(node)
        node.num_no_improvements = 9  # 9 // 4 + 1 = 3
        from repro.utils.work import WorkMeter

        tour, dirty = node._perturbate(WorkMeter())
        assert node._last_strength == 3
        assert tour.is_valid()
        assert dirty  # kicked cities reported
        kinds = [e.kind for e in node.events]
        assert EventKind.PERTURBATION_STRENGTH in kinds

    def test_restart_after_c_r(self, small_instance):
        cfg = NodeConfig(inner_kicks=0, c_v=4, c_r=10)
        node = EANode(0, small_instance, cfg, rng=1)
        _bootstrap(node)
        node.num_no_improvements = 11
        from repro.utils.work import WorkMeter

        tour, dirty = node._perturbate(WorkMeter())
        assert dirty is None  # fresh construction, full LK queue
        assert node.num_no_improvements == 0
        assert EventKind.RESTART in [e.kind for e in node.events]

    def test_counter_resets_on_improvement(self, node):
        _bootstrap(node)
        node.num_no_improvements = 5
        better = node.s_best.copy()
        from repro.localsearch import lin_kernighan, LKConfig

        lin_kernighan(better, LKConfig(neighbor_k=16, breadth=(8, 4, 2)))
        if better.length == node.s_best.length:
            pytest.skip("instance already at engine optimum")
        node.select(better, [])
        assert node.num_no_improvements == 0


class TestWorkBudget:
    def test_compute_respects_budget(self, small_instance):
        node = EANode(0, small_instance, NodeConfig(inner_kicks=50), rng=2)
        work, cand = node.compute(budget_vsec=0.05)
        assert work <= 0.3  # small overshoot allowed at move boundaries
        assert cand.is_valid()

    def test_stop_records_event(self, node):
        _bootstrap(node)
        node.stop("budget")
        assert node.done_reason == "budget"
        assert node.events.of_kind(EventKind.DONE)[0].value == "budget"
        node.stop("other")  # idempotent: first reason wins
        assert node.done_reason == "budget"
