"""Analysis: quality metrics, anytime curves, speed-ups, reporting."""

from .normalization import (
    NormalizationFactor,
    measure_machine_factor,
    normalize_times,
)
from .obs_report import compare_trace_files, compare_traces
from .plotting import plot_instance, plot_tour
from .quality import (
    excess_percent,
    mean_excess_percent,
    reference_length,
    success_count,
)
from .reporting import (
    ascii_chart,
    fmt_pct,
    fmt_time,
    format_series,
    format_table,
    op_stats_table,
)
from .runio import (
    load_jobs,
    load_run,
    load_trace,
    run_from_json,
    run_to_json,
    save_jobs,
    save_run,
    save_trace,
)
from .statistics import (
    Comparison,
    bootstrap_mean_ci,
    compare_runs,
    paired_compare,
)
from .speedup import QualityLevelRow, speedup_table, time_to_quality_stats
from .timeseries import average_traces, merge_min, sample, time_to_target, value_at

__all__ = [
    "excess_percent",
    "mean_excess_percent",
    "success_count",
    "reference_length",
    "value_at",
    "sample",
    "average_traces",
    "time_to_target",
    "merge_min",
    "QualityLevelRow",
    "speedup_table",
    "time_to_quality_stats",
    "NormalizationFactor",
    "measure_machine_factor",
    "normalize_times",
    "format_table",
    "format_series",
    "ascii_chart",
    "fmt_pct",
    "fmt_time",
    "op_stats_table",
    "plot_instance",
    "plot_tour",
    "save_run",
    "load_run",
    "run_to_json",
    "run_from_json",
    "save_jobs",
    "load_jobs",
    "save_trace",
    "load_trace",
    "compare_traces",
    "compare_trace_files",
    "Comparison",
    "compare_runs",
    "paired_compare",
    "bootstrap_mean_ci",
]
