"""Or-opt local search: relocate short segments.

Moves segments of 1-3 consecutive cities to a better position between a
nearby city and its successor.  Complements 2-opt (which cannot perform
such relocations without two moves) and serves as the refinement step of
the multilevel baseline's cheaper configurations.  Built on the shared
engine layer (row-cached distances, don't-look queue, per-call stats,
pluggable candidates).
"""

from __future__ import annotations

import numpy as np

from ..tsp.candidates import KNNCandidates, as_candidate_set
from ..tsp.tour import Tour
from ..utils.sanitize import check_tour, sanitize_enabled
from ..utils.work import WorkMeter
from .engine import (
    DistView,
    DontLookQueue,
    OpStats,
    register_operator,
    resolve_kernel,
)

__all__ = ["or_opt"]


@register_operator("or_opt")
def or_opt(tour: Tour, neighbor_k: int = 8, max_seg: int = 3,
           meter: WorkMeter | None = None, *, candidates=None,
           stats: OpStats | None = None,
           view: DistView | None = None, kernel: str | None = None) -> int:
    """Optimize ``tour`` in place with Or-opt moves; returns improvement.

    First-improvement over segment lengths 1..max_seg, insertion points
    drawn from the candidate lists of the segment's first city
    (``candidates`` as in :func:`repro.localsearch.two_opt.two_opt`;
    default k-NN of width ``neighbor_k``).  ``kernel`` selects the scan
    implementation as in :func:`~repro.localsearch.two_opt.two_opt`.
    """
    kernel = resolve_kernel(kernel)
    inst = tour.instance
    n = tour.n
    if max_seg >= n - 2:
        raise ValueError("segment length too large for instance size")
    meter = meter if meter is not None else WorkMeter()
    stats = stats if stats is not None else OpStats()
    provider = (
        as_candidate_set(candidates) if candidates is not None
        else KNNCandidates(min(neighbor_k, n - 1))
    )
    view = view if view is not None else DistView(inst)
    if kernel == "vector":
        from . import kernels

        return kernels.or_opt_vector(
            tour, provider, view, meter, stats, max_seg=max_seg
        )
    neighbor_rows = provider.row_lists(inst)
    rows = view.rows if kernel != "scalar" else None
    dist = view.dist

    queue = DontLookQueue(n)
    queue.fill(range(n))
    total = 0
    scanned = 0
    moves = 0
    swaps = 0

    while queue and not meter.exhausted():
        s0 = queue.pop()
        # A successful move always breaks back to the pop loop, so the
        # tour (and these locals) are stable across segment lengths.
        order, position = tour.order, tour.position
        pos_item, order_item = position.item, order.item
        p0 = pos_item(s0)
        nbr_s0 = neighbor_rows[s0]
        seg = [s0]
        moved = False
        for seg_len in range(1, max_seg + 1):
            if seg_len > 1:
                seg.append(order_item((p0 + seg_len - 1) % n))
            last = seg[-1]
            before = order_item(p0 - 1 if p0 else n - 1)
            after = order_item((p0 + seg_len) % n)
            if before in seg or after in seg:
                continue
            if rows is not None:
                # Row fast path: inlined successor lookup, orientation
                # test unrolled, work ticked in one batch per scan.
                removed = (
                    rows[before][s0]
                    + rows[last][after]
                    - rows[before][after]
                )
                cnt = 0
                for c in nbr_s0:
                    cnt += 1
                    if c in seg or c == before:
                        continue
                    p = pos_item(c) + 1
                    cn = order_item(p if p < n else 0)
                    if cn in seg:
                        continue
                    dc = rows[c]
                    d_cn = rows[cn]
                    base = dc[cn] + removed
                    # Insert the segment (possibly reversed) after c;
                    # forward orientation is tried first, as before.
                    delta = dc[s0] + d_cn[last] - base
                    if delta >= 0:
                        delta = dc[last] + d_cn[s0] - base
                        if delta >= 0:
                            continue
                        seg.reverse()
                    _do_relocate(tour, seg, c)
                    meter.tick(n // 4 + 1)
                    swaps += len(seg)
                    moves += 1
                    tour.length += delta
                    total -= delta
                    for city in (before, after, c, cn, *seg):
                        queue.push(int(city))
                    moved = True
                    break
                meter.tick(cnt)
                scanned += cnt
            else:
                # Scalar fallback (dense matrix not affordable); kept in
                # the pre-engine shape — this is the path the DistView
                # bench compares against.
                removed = (
                    dist(before, s0) + dist(last, after)
                    - dist(before, after)
                )
                for c in nbr_s0:
                    meter.tick()
                    scanned += 1
                    if c in seg or c == before:
                        continue
                    cn = tour.next(c)
                    if cn in seg:
                        continue
                    for head, tail in ((s0, last), (last, s0)):
                        added = dist(c, head) + dist(tail, cn) - dist(c, cn)
                        delta = added - removed
                        if delta < 0:
                            if head != s0:
                                seg.reverse()
                            _do_relocate(tour, seg, c)
                            meter.tick(n // 4 + 1)
                            swaps += len(seg)
                            moves += 1
                            tour.length += delta
                            total -= delta
                            for city in (before, after, c, cn, *seg):
                                queue.push(int(city))
                            moved = True
                            break
                    if moved:
                        break
            if moved:
                break
    stats.calls += 1
    stats.candidate_scans += scanned
    stats.moves += moves
    stats.segment_swaps += swaps
    stats.queue_wakeups += queue.wakeups
    stats.gain += total
    if sanitize_enabled():
        check_tour(tour, "or_opt")
    return total


def _do_relocate(tour: Tour, seg: list[int], after_city: int) -> None:
    """Reinsert ``seg`` (in the given orientation) right after
    ``after_city``, vectorized: drop the segment's slots, split the rest
    at the insertion point, concatenate."""
    position = tour.position
    keep = np.ones(tour.n, dtype=bool)
    seg_arr = np.asarray(seg, dtype=np.intp)
    keep[position[seg_arr]] = False
    rest = tour.order[keep]
    cut = int(np.nonzero(rest == after_city)[0][0]) + 1
    tour.order = np.concatenate([rest[:cut], seg_arr, rest[cut:]])
    position[tour.order] = tour._iota
