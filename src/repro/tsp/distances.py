"""TSPLIB-conformant distance functions.

Every function in this module maps coordinate arrays to *integer* edge
weights following the rounding conventions of Reinelt's TSPLIB (the format
used by the paper's testbed).  Two calling styles are supported:

* ``pairwise(coords)`` — full ``(n, n)`` matrix, vectorized;
* ``rows(coords, i, js)`` — distances from city ``i`` to an index array
  ``js`` without materializing the matrix (used for large instances).

All distances are symmetric and satisfy ``d[i, i] == 0``.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "EDGE_WEIGHT_TYPES",
    "euc_2d",
    "ceil_2d",
    "man_2d",
    "max_2d",
    "att",
    "geo",
    "pairwise_matrix",
    "row_distances",
    "pair_distances",
    "distance_closure",
]

#: Earth radius used by TSPLIB's GEO distance, in kilometres.
GEO_RADIUS = 6378.388

#: Edge-weight types implemented here (subset of TSPLIB spec that covers
#: every instance class used in the paper).
EDGE_WEIGHT_TYPES = ("EUC_2D", "CEIL_2D", "MAN_2D", "MAX_2D", "ATT", "GEO", "EXPLICIT")


def _as_coords(coords: np.ndarray) -> np.ndarray:
    arr = np.asarray(coords, dtype=np.float64)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError(f"coords must have shape (n, 2), got {arr.shape}")
    return arr


def _nint(x: np.ndarray) -> np.ndarray:
    # TSPLIB nint() is floor(x + 0.5), not round-half-to-even.
    return np.floor(x + 0.5).astype(np.int64)


def euc_2d(dx: np.ndarray, dy: np.ndarray) -> np.ndarray:
    """Rounded Euclidean distance (TSPLIB ``EUC_2D``): nint(sqrt(dx^2+dy^2))."""
    return _nint(np.hypot(dx, dy))


def ceil_2d(dx: np.ndarray, dy: np.ndarray) -> np.ndarray:
    """Ceiling Euclidean distance (TSPLIB ``CEIL_2D``)."""
    return np.ceil(np.hypot(dx, dy)).astype(np.int64)


def man_2d(dx: np.ndarray, dy: np.ndarray) -> np.ndarray:
    """Rounded Manhattan distance (TSPLIB ``MAN_2D``)."""
    return _nint(np.abs(dx) + np.abs(dy))


def max_2d(dx: np.ndarray, dy: np.ndarray) -> np.ndarray:
    """Rounded maximum-norm distance (TSPLIB ``MAX_2D``)."""
    return np.maximum(_nint(np.abs(dx)), _nint(np.abs(dy)))


def att(dx: np.ndarray, dy: np.ndarray) -> np.ndarray:
    """Pseudo-Euclidean ATT distance (TSPLIB ``ATT``).

    ``r = sqrt((dx^2+dy^2)/10); t = nint(r); d = t+1 if t < r else t``
    """
    rij = np.sqrt((dx * dx + dy * dy) / 10.0)
    tij = np.floor(rij + 0.5)
    return np.where(tij < rij, tij + 1, tij).astype(np.int64)


def _geo_radians(coords: np.ndarray) -> np.ndarray:
    """Convert TSPLIB DDD.MM coordinates to radians (TSPLIB convention)."""
    deg = np.trunc(coords)
    minutes = coords - deg
    return math.pi * (deg + 5.0 * minutes / 3.0) / 180.0


def geo(coords_i: np.ndarray, coords_j: np.ndarray) -> np.ndarray:
    """Geographical distance (TSPLIB ``GEO``) between coordinate arrays.

    Unlike the planar metrics this one needs the raw coordinates rather than
    deltas; both arguments are ``(..., 2)`` latitude/longitude arrays in
    TSPLIB's DDD.MM format.
    """
    ri = _geo_radians(np.asarray(coords_i, dtype=np.float64))
    rj = _geo_radians(np.asarray(coords_j, dtype=np.float64))
    q1 = np.cos(ri[..., 1] - rj[..., 1])
    q2 = np.cos(ri[..., 0] - rj[..., 0])
    q3 = np.cos(ri[..., 0] + rj[..., 0])
    arg = 0.5 * ((1.0 + q1) * q2 - (1.0 - q1) * q3)
    arg = np.clip(arg, -1.0, 1.0)
    return (GEO_RADIUS * np.arccos(arg) + 1.0).astype(np.int64)


_PLANAR = {
    "EUC_2D": euc_2d,
    "CEIL_2D": ceil_2d,
    "MAN_2D": man_2d,
    "MAX_2D": max_2d,
    "ATT": att,
}


def pairwise_matrix(coords: np.ndarray, edge_weight_type: str = "EUC_2D") -> np.ndarray:
    """Full symmetric ``(n, n)`` integer distance matrix.

    Memory is O(n^2); callers working with large instances should prefer
    :func:`row_distances` / :func:`distance_closure`.
    """
    coords = _as_coords(coords)
    if edge_weight_type == "GEO":
        return geo(coords[:, None, :], coords[None, :, :])
    try:
        fn = _PLANAR[edge_weight_type]
    except KeyError:
        raise ValueError(f"unsupported edge weight type: {edge_weight_type!r}") from None
    dx = coords[:, None, 0] - coords[None, :, 0]
    dy = coords[:, None, 1] - coords[None, :, 1]
    d = fn(dx, dy)
    np.fill_diagonal(d, 0)
    return d


def row_distances(
    coords: np.ndarray, i: int, js: np.ndarray, edge_weight_type: str = "EUC_2D"
) -> np.ndarray:
    """Distances from city ``i`` to each city in index array ``js``."""
    coords = _as_coords(coords)
    js = np.asarray(js, dtype=np.intp)
    if edge_weight_type == "GEO":
        return geo(coords[i], coords[js])
    try:
        fn = _PLANAR[edge_weight_type]
    except KeyError:
        raise ValueError(f"unsupported edge weight type: {edge_weight_type!r}") from None
    dx = coords[i, 0] - coords[js, 0]
    dy = coords[i, 1] - coords[js, 1]
    return fn(dx, dy)


def pair_distances(
    coords: np.ndarray,
    is_: np.ndarray,
    js: np.ndarray,
    edge_weight_type: str = "EUC_2D",
) -> np.ndarray:
    """Elementwise distances ``d(is_[t], js[t])`` without the matrix.

    The gather primitive behind ``DistView.gather_pairs`` on instances
    too large for a dense matrix: the vectorized kernels need distances
    for arbitrary (city, city) pairs, not just one city's row.  Always
    returns int64 (the rounding helpers do), so downstream gain
    arithmetic cannot overflow int32 on large-coordinate instances.
    """
    coords = _as_coords(coords)
    is_ = np.asarray(is_, dtype=np.intp)
    js = np.asarray(js, dtype=np.intp)
    if edge_weight_type == "GEO":
        return geo(coords[is_], coords[js])
    try:
        fn = _PLANAR[edge_weight_type]
    except KeyError:
        raise ValueError(f"unsupported edge weight type: {edge_weight_type!r}") from None
    dx = coords[is_, 0] - coords[js, 0]
    dy = coords[is_, 1] - coords[js, 1]
    return fn(dx, dy)


def distance_closure(coords: np.ndarray, edge_weight_type: str = "EUC_2D"):
    """Return a scalar ``dist(i, j) -> int`` closure for the given metric.

    The closure is the slow-but-universal path used by correctness tests and
    by code that touches too few pairs to justify vectorization.
    """
    coords = _as_coords(coords)
    if edge_weight_type == "GEO":
        rad = _geo_radians(coords)

        def dist_geo(i: int, j: int) -> int:
            if i == j:
                return 0
            q1 = math.cos(rad[i, 1] - rad[j, 1])
            q2 = math.cos(rad[i, 0] - rad[j, 0])
            q3 = math.cos(rad[i, 0] + rad[j, 0])
            arg = 0.5 * ((1.0 + q1) * q2 - (1.0 - q1) * q3)
            arg = min(1.0, max(-1.0, arg))
            return int(GEO_RADIUS * math.acos(arg) + 1.0)

        return dist_geo

    x = coords[:, 0]
    y = coords[:, 1]
    if edge_weight_type == "EUC_2D":

        def dist(i: int, j: int) -> int:
            return int(math.hypot(x[i] - x[j], y[i] - y[j]) + 0.5)

    elif edge_weight_type == "CEIL_2D":

        def dist(i: int, j: int) -> int:
            return math.ceil(math.hypot(x[i] - x[j], y[i] - y[j]))

    elif edge_weight_type == "MAN_2D":

        def dist(i: int, j: int) -> int:
            return int(abs(x[i] - x[j]) + abs(y[i] - y[j]) + 0.5)

    elif edge_weight_type == "MAX_2D":

        def dist(i: int, j: int) -> int:
            return int(max(int(abs(x[i] - x[j]) + 0.5), int(abs(y[i] - y[j]) + 0.5)))

    elif edge_weight_type == "ATT":

        def dist(i: int, j: int) -> int:
            dx = x[i] - x[j]
            dy = y[i] - y[j]
            r = math.sqrt((dx * dx + dy * dy) / 10.0)
            t = int(r + 0.5)
            return t + 1 if t < r else t

    else:
        raise ValueError(f"unsupported edge weight type: {edge_weight_type!r}")
    return dist
