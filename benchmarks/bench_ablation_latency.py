"""Ablation: message latency sensitivity.

The paper reports that "communication costs are small compared to
computational costs and therefore have no influence on the performance"
on Gbps Ethernet.  This ablation cranks the simulated latency from LAN
(ms) through WAN (100s of ms) to 'carrier pigeon' (longer than the whole
run), quantifying at what point the claim breaks.
"""

import numpy as np

from _common import (
    emit,
    N_RUNS,
    dist_budget_per_node,
    print_banner,
    reference,
    run_dist,
    seeds,
)
from repro.analysis import fmt_pct, format_table, mean_excess_percent
from repro.distributed.network import LatencyModel

INSTANCE = "fl300"


def _latencies(budget):
    return [
        ("LAN (1 ms)", LatencyModel(1e-3, 5e6)),
        ("WAN (100 ms)", LatencyModel(0.1, 5e6)),
        ("10% of budget", LatencyModel(0.1 * budget, 5e6)),
        ("beyond budget (no msgs arrive)", LatencyModel(10 * budget, 5e6)),
    ]


def _experiment():
    ref, _ = reference(INSTANCE)
    budget = dist_budget_per_node(INSTANCE)
    rows = []
    means = {}
    for label, lat in _latencies(budget):
        lengths = []
        received = []
        for s in seeds(9700, N_RUNS):
            res = run_dist(INSTANCE, "random_walk", s, budget=budget,
                           latency=lat)
            lengths.append(res.best_length)
            from repro.core.events import EventKind

            received.append(sum(
                len(log.of_kind(EventKind.RECEIVED_IMPROVEMENT))
                for log in res.event_logs.values()
            ))
        excess = mean_excess_percent(lengths, ref)
        means[label] = excess
        rows.append((label, int(np.mean(lengths)), fmt_pct(excess),
                     f"{np.mean(received):.1f}"))
    return rows, means


def test_ablation_latency(once):
    rows, means = once(_experiment)
    print_banner(
        f"Ablation: message latency on {INSTANCE} "
        f"(8-node hypercube, avg of {N_RUNS} runs)",
    )
    emit(format_table(
        ["latency", "mean length", "excess", "tours adopted/run"], rows,
    ))

    # Shape: LAN-scale latency is as good as it gets, and realistic
    # latencies do not hurt (the paper's claim).
    assert means["LAN (1 ms)"] <= means["beyond budget (no msgs arrive)"] + 0.25
    assert means["WAN (100 ms)"] <= means["LAN (1 ms)"] + 0.35
