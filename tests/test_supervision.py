"""Unit tests for the MP supervision machinery (no real processes).

The process-level behaviour (crash rerouting, restart, fail-fast) is
exercised in test_mp_backend.py; here the pacing, never-drop delivery
and topology-degradation building blocks are tested in isolation.
"""

import queue

import pytest

from repro.distributed.message import (
    WIRE_NEIGHBORS,
    WIRE_OPTIMUM_FOUND,
    WIRE_STOP,
    WIRE_TOUR,
    wire_decode,
    wire_encode,
)
from repro.distributed.supervision import BudgetPacer, deliver_critical
from repro.distributed.topology import hypercube, remove_node, ring, validate_topology


class TestBudgetPacer:
    def test_initial_slice_is_small_and_fixed(self):
        pacer = BudgetPacer(initial_vsec=4.0)
        assert pacer.rate is None
        assert pacer.next_budget(1e9) == 4.0

    def test_budget_bounded_by_remaining_wall_clock(self):
        pacer = BudgetPacer(safety=0.85, max_slice_seconds=0.5)
        pacer.observe(work_vsec=10.0, wall_seconds=1.0)  # rate = 10 vsec/s
        # Remaining below the slice cap: budget must fit in the deadline.
        assert pacer.next_budget(0.2) == pytest.approx(0.2 * 10.0 * 0.85)
        # Large remaining: the slice cap bounds iteration (and heartbeat)
        # latency instead.
        assert pacer.next_budget(100.0) == pytest.approx(0.5 * 10.0 * 0.85)

    def test_rate_is_ema_of_observations(self):
        pacer = BudgetPacer(ema=0.5)
        pacer.observe(10.0, 1.0)
        assert pacer.rate == pytest.approx(10.0)
        pacer.observe(20.0, 1.0)
        assert pacer.rate == pytest.approx(15.0)

    def test_degenerate_observations_ignored(self):
        pacer = BudgetPacer()
        pacer.observe(0.0, 1.0)
        pacer.observe(1.0, 0.0)
        assert pacer.rate is None
        assert pacer.next_budget(0.0) > 0  # still positive, never zero


class TestDeliverCritical:
    def _full_of_tours(self, maxsize=4):
        q = queue.Queue(maxsize=maxsize)
        for i in range(maxsize):
            q.put(wire_encode(WIRE_TOUR, 0, None, 100 + i))
        return q

    def test_notification_survives_full_inbox(self):
        q = self._full_of_tours(4)
        item = wire_encode(WIRE_OPTIMUM_FOUND, 1, None, 42)
        delivered, dropped = deliver_critical(q, item, timeout_seconds=2.0)
        assert delivered
        assert dropped >= 1  # made room by evicting the oldest tour
        kinds = [q.get_nowait()[0] for _ in range(q.qsize())]
        assert WIRE_OPTIMUM_FOUND in kinds

    def test_queued_criticals_are_not_lost(self):
        q = queue.Queue(maxsize=4)
        q.put(wire_encode(WIRE_NEIGHBORS, -1, (1, 2), 0))
        for i in range(3):
            q.put(wire_encode(WIRE_TOUR, 0, None, i))
        delivered, dropped = deliver_critical(
            q, wire_encode(WIRE_OPTIMUM_FOUND, 1, None, 7), timeout_seconds=2.0
        )
        assert delivered
        remaining = [q.get_nowait() for _ in range(q.qsize())]
        kinds = [it[0] for it in remaining]
        # The control message was displaced while making room but must be
        # re-enqueued, not dropped.
        assert WIRE_NEIGHBORS in kinds
        assert WIRE_OPTIMUM_FOUND in kinds

    def test_plain_put_when_space(self):
        q = queue.Queue(maxsize=4)
        delivered, dropped = deliver_critical(
            q, wire_encode(WIRE_STOP, -1, None, 0)
        )
        assert delivered and dropped == 0
        assert q.get_nowait()[0] == WIRE_STOP


class TestWireFormat:
    def test_decode_skips_control_kinds(self):
        raw = [
            wire_encode(WIRE_TOUR, 0, [0, 1, 2], 10),
            wire_encode(WIRE_NEIGHBORS, -1, (1,), 0),
            wire_encode(WIRE_STOP, -1, None, 0),
            wire_encode(WIRE_OPTIMUM_FOUND, 2, [2, 1, 0], 9),
        ]
        msgs = wire_decode(raw)
        assert [m.kind.value for m in msgs] == [WIRE_TOUR, WIRE_OPTIMUM_FOUND]
        assert msgs[1].sender == 2 and msgs[1].length == 9

    def test_decode_handles_orderless_notification(self):
        msgs = wire_decode([wire_encode(WIRE_OPTIMUM_FOUND, 1, None, 5)])
        assert msgs[0].order is None


class TestRemoveNode:
    def test_neighbors_cross_linked(self):
        topo = remove_node(hypercube(8), 3)
        assert 3 not in topo
        # Former neighbours of 3 (1, 2, 7) now form a clique.
        for a in (1, 2, 7):
            assert {1, 2, 7} - {a} <= set(topo[a])
        validate_topology(topo)  # still simple, symmetric, connected

    def test_ring_stays_connected(self):
        topo = remove_node(ring(5), 0)
        validate_topology(topo)
        assert set(topo) == {1, 2, 3, 4}
        assert 4 in topo[1] and 1 in topo[4]  # the gap was bridged

    def test_unknown_node_rejected(self):
        with pytest.raises(KeyError):
            remove_node(ring(4), 9)
