"""Node churn: joins and leaves during a run.

The paper motivates the P2P design with dynamic membership ("nodes can
join and leave at any time") but evaluates only static 8-node runs; this
module supplies the dynamic half as an extension.  A churn *schedule* is
a list of timestamped events:

* ``leave`` — the node stops at the given virtual time (its tours stay
  wherever they were already broadcast; the topology degenerates around
  it, exactly the paper's end-of-run behaviour);
* ``join`` — a fresh node activates at the given time with an empty
  state; the hub assigns it the next hypercube position and it links to
  the alive bit-flip neighbours.

The simulator consumes the schedule; ``bench_ablation_churn`` measures
how much quality a churning network loses versus a static one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

__all__ = ["ChurnEvent", "make_schedule", "validate_schedule"]


@dataclass(frozen=True)
class ChurnEvent:
    """One membership change at a virtual time (per-node clock scale)."""

    vsec: float
    action: Literal["join", "leave"]
    node_id: int

    def __post_init__(self):
        if self.action not in ("join", "leave"):
            raise ValueError(f"unknown churn action {self.action!r}")
        if self.vsec < 0:
            raise ValueError("churn time must be non-negative")


def make_schedule(events) -> list[ChurnEvent]:
    """Normalize ``(vsec, action, node_id)`` tuples into a sorted schedule."""
    out = [
        e if isinstance(e, ChurnEvent) else ChurnEvent(*e) for e in events
    ]
    return sorted(out, key=lambda e: (e.vsec, e.node_id))


def validate_schedule(schedule: list[ChurnEvent], n_initial: int,
                      n_total: int) -> None:
    """Sanity-check a schedule against the node universe.

    Initial nodes are 0..n_initial-1 (alive at t=0); joiners must use
    ids n_initial..n_total-1, each at most once; leaves must reference a
    node that exists (initial or joined earlier).
    """
    joined: set[int] = set()
    alive = set(range(n_initial))
    for e in schedule:
        if e.action == "join":
            if not (n_initial <= e.node_id < n_total):
                raise ValueError(
                    f"join id {e.node_id} outside {n_initial}..{n_total - 1}"
                )
            if e.node_id in joined:
                raise ValueError(f"node {e.node_id} joins twice")
            joined.add(e.node_id)
            alive.add(e.node_id)
        else:
            if e.node_id not in alive:
                raise ValueError(
                    f"leave for node {e.node_id} before it exists"
                )
            alive.discard(e.node_id)
    if not alive:
        raise ValueError("schedule leaves no node alive")
