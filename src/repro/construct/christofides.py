"""Christofides-style tour construction.

MST + minimum-weight perfect matching on odd-degree vertices + Eulerian
shortcut.  With an exact matching this is the classic 1.5-approximation for
metric TSP; the paper cites HK-Christofides as the slower-but-not-better
alternative to Quick-Borůvka, which this module lets us reproduce.

The matching uses :func:`networkx.min_weight_matching` (exact, O(V^3)),
so this constructor is intended for instances up to a few thousand cities.
"""

from __future__ import annotations

import networkx as nx
import numpy as np
from scipy.sparse.csgraph import minimum_spanning_tree

from ..tsp.tour import Tour

__all__ = ["christofides"]


def christofides(instance) -> Tour:
    """Christofides tour (exact matching; metric instances)."""
    n = instance.n
    d = instance.distance_matrix()

    mst = minimum_spanning_tree(d.astype(np.float64) + 1.0).tocoo()
    degree = np.zeros(n, dtype=np.int64)
    multigraph = nx.MultiGraph()
    multigraph.add_nodes_from(range(n))
    for i, j in zip(mst.row, mst.col):
        multigraph.add_edge(int(i), int(j))
        degree[i] += 1
        degree[j] += 1

    odd = np.flatnonzero(degree % 2 == 1)
    match_graph = nx.Graph()
    for ai in range(len(odd)):
        for bi in range(ai + 1, len(odd)):
            a, b = int(odd[ai]), int(odd[bi])
            match_graph.add_edge(a, b, weight=int(d[a, b]))
    matching = nx.min_weight_matching(match_graph)
    for a, b in matching:
        multigraph.add_edge(a, b)

    circuit = nx.eulerian_circuit(multigraph, source=0)
    seen = np.zeros(n, dtype=bool)
    order = []
    for a, _b in circuit:
        if not seen[a]:
            seen[a] = True
            order.append(a)
    assert len(order) == n, "Eulerian shortcut missed cities"
    return Tour(instance, np.array(order, dtype=np.intp))
