"""2-opt local search with neighbour lists and don't-look bits.

Kept separate from the LK engine both as a baseline for tests (anything LK
produces must be 2-opt-optimal w.r.t. the same candidate lists) and as a
cheap repair step for the multilevel baseline.  Built on the shared
engine layer: row-cached distances (:class:`~repro.localsearch.engine.DistView`),
the don't-look queue, per-call :class:`~repro.localsearch.engine.OpStats`,
and pluggable candidate sets.
"""

from __future__ import annotations

from ..tsp.candidates import KNNCandidates, as_candidate_set
from ..tsp.tour import Tour
from ..utils.sanitize import check_tour, sanitize_enabled
from ..utils.work import WorkMeter
from .engine import (
    DistView,
    DontLookQueue,
    OpStats,
    register_operator,
    resolve_kernel,
)

__all__ = ["two_opt"]


@register_operator("two_opt")
def two_opt(tour: Tour, neighbor_k: int = 8, meter: WorkMeter | None = None,
            *, candidates=None, stats: OpStats | None = None,
            view: DistView | None = None, kernel: str | None = None) -> int:
    """Optimize ``tour`` in place to 2-opt optimality over the candidates.

    Returns the total improvement (non-negative).  Interruptible: stops at
    a move boundary once ``meter`` is exhausted.  ``candidates`` is a
    :class:`~repro.tsp.candidates.CandidateSet`, registry name, or raw
    array; the default is plain k-NN of width ``neighbor_k``.  ``view``
    overrides the distance access (benchmarks use this to compare the
    row-cached and scalar paths).  ``kernel`` selects the scan
    implementation (``"scalar"``/``"row"``/``"vector"``, default via
    :func:`~repro.localsearch.engine.resolve_kernel`); all three tiers
    select bit-identical move sequences.
    """
    kernel = resolve_kernel(kernel)
    inst = tour.instance
    n = tour.n
    meter = meter if meter is not None else WorkMeter()
    stats = stats if stats is not None else OpStats()
    provider = (
        as_candidate_set(candidates) if candidates is not None
        else KNNCandidates(min(neighbor_k, n - 1))
    )
    view = view if view is not None else DistView(inst)
    if kernel == "vector":
        from . import kernels

        return kernels.two_opt_vector(tour, provider, view, meter, stats)
    neighbor_rows = provider.row_lists(inst)
    rows = view.rows if kernel != "scalar" else None
    dist = view.dist

    queue = DontLookQueue(n)
    queue.fill(range(n))
    total = 0
    scanned = 0
    moves = 0
    swaps = 0

    # reverse_segment mutates order/position in place, so the locals stay
    # aliases of the live arrays across moves.
    order, position = tour.order, tour.position
    pos_item, order_item = position.item, order.item
    push = queue.push

    while queue and not meter.exhausted():
        a = queue.pop()
        nbr_a = neighbor_rows[a]
        da = rows[a] if rows is not None else None
        improved_here = True
        while improved_here and not meter.exhausted():
            improved_here = False
            for b, forward in (
                (tour.next(a), True), (tour.prev(a), False)
            ):
                if da is not None:
                    # Row fast path: one list per endpoint, successor
                    # lookup inlined, work ticked in one batch per scan.
                    d_ab = da[b]
                    db = rows[b]
                    cnt = 0
                    for c in nbr_a:
                        cnt += 1
                        d_ac = da[c]
                        if d_ac >= d_ab:
                            break  # neighbours sorted by distance
                        if c == b:
                            continue
                        # Orient: the move removes (a,b) and (c,d) where
                        # d is c's neighbour on the b side of a.
                        if forward:
                            p = pos_item(c) + 1
                            d_city = order_item(p if p < n else 0)
                        else:
                            d_city = order_item(pos_item(c) - 1)
                        if d_city == a:
                            continue
                        delta = d_ac + db[d_city] - d_ab - rows[c][d_city]
                        if delta < 0:
                            if forward:
                                # remove (a->b), (c->d): reverse b..c
                                moved = tour.reverse_segment(
                                    position[b], position[c]
                                )
                            else:
                                # remove (b->a), (d->c): reverse a..d
                                moved = tour.reverse_segment(
                                    position[a], position[d_city]
                                )
                            meter.tick(moved if moved else 1)
                            swaps += moved
                            moves += 1
                            tour.length += delta
                            total -= delta
                            for city in (a, b, c, d_city):
                                push(int(city))
                            improved_here = True
                            break
                    meter.tick(cnt)
                    scanned += cnt
                else:
                    # Scalar fallback (dense matrix not affordable); kept
                    # in the pre-engine shape — this is the path the
                    # DistView bench compares against.
                    d_ab = dist(a, b)
                    for c in nbr_a:
                        meter.tick()
                        scanned += 1
                        d_ac = dist(a, c)
                        if d_ac >= d_ab:
                            break
                        if c == b:
                            continue
                        d_city = (
                            tour.next(c) if b == tour.next(a)
                            else tour.prev(c)
                        )
                        if d_city == a:
                            continue
                        delta = (
                            d_ac + dist(b, d_city) - d_ab - dist(c, d_city)
                        )
                        if delta < 0:
                            if forward:
                                moved = tour.reverse_segment(
                                    position[b], position[c]
                                )
                            else:
                                moved = tour.reverse_segment(
                                    position[a], position[d_city]
                                )
                            meter.tick(moved if moved else 1)
                            swaps += moved
                            moves += 1
                            tour.length += delta
                            total -= delta
                            for city in (a, b, c, d_city):
                                push(int(city))
                            improved_here = True
                            break
                if improved_here:
                    break
    stats.calls += 1
    stats.candidate_scans += scanned
    stats.moves += moves
    stats.segment_swaps += swaps
    stats.queue_wakeups += queue.wakeups
    stats.gain += total
    if sanitize_enabled():
        check_tour(tour, "two_opt")
    return total
