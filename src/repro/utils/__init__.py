"""Shared utilities: deterministic RNG plumbing, work accounting,
seeded schedule fuzzing."""

from .rng import ensure_rng, spawn_rngs
from .schedfuzz import FuzzReport, ScheduleFuzzer, ShuffleEventLoop, fuzz
from .work import WorkMeter

__all__ = [
    "FuzzReport",
    "ScheduleFuzzer",
    "ShuffleEventLoop",
    "WorkMeter",
    "ensure_rng",
    "fuzz",
    "spawn_rngs",
]
