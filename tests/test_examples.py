"""Smoke tests: every example script runs to completion.

Marked slow; run with ``pytest -m slow`` (or no marker filter) to verify
the examples stay in sync with the API.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    p.name for p in (Path(__file__).parent.parent / "examples").glob("*.py")
)

FAST = {"bootstrap_protocol.py", "tsplib_workflow.py", "quickstart.py"}


@pytest.mark.parametrize("name", sorted(FAST))
def test_fast_example_runs(name):
    proc = subprocess.run(
        [sys.executable, str(Path("examples") / name)],
        capture_output=True,
        text=True,
        timeout=600,
        cwd=Path(__file__).parent.parent,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip()


@pytest.mark.slow
@pytest.mark.parametrize("name", sorted(set(EXAMPLES) - FAST))
def test_slow_example_runs(name):
    proc = subprocess.run(
        [sys.executable, str(Path("examples") / name)],
        capture_output=True,
        text=True,
        timeout=1200,
        cwd=Path(__file__).parent.parent,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip()


def test_example_inventory_documented_in_readme():
    readme = (Path(__file__).parent.parent / "README.md").read_text()
    for name in EXAMPLES:
        assert name.removesuffix(".py") in readme, (
            f"examples/{name} missing from README table"
        )
