"""Benchmark session configuration.

Benches print paper-shaped tables to stdout; an autouse fixture disables
pytest's capture inside this directory so the tables land in the bench
log.  Every experiment runs exactly once under pytest-benchmark timing
(``pedantic`` with one round) because the experiments are deterministic
virtual-time runs, not microbenchmarks.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))


def pytest_terminal_summary(terminalreporter):
    """Flush the bench report buffer so tables survive output capture."""
    import _common

    if _common.REPORT_LINES:
        terminalreporter.section("benchmark report (paper tables/figures)")
        for line in _common.REPORT_LINES:
            terminalreporter.write_line(line)


@pytest.fixture
def once(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)

    return runner
