"""Held-Karp lower bound by subgradient ascent on 1-trees.

The paper reports tour quality as "% above the optimum (or Held-Karp lower
bound)" for instances whose optimum is unknown; this module supplies that
denominator.  The ascent follows Held & Karp's original scheme with the
step-size schedule popularized by Helsgaun: the penalty vector moves along
a smoothed subgradient (degree - 2), with the step halved on a fixed
period.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .one_tree import OneTree, minimum_one_tree

__all__ = ["HeldKarpResult", "held_karp_bound"]


@dataclass(frozen=True)
class HeldKarpResult:
    """Outcome of the subgradient ascent."""

    bound: float
    pi: np.ndarray
    iterations: int
    one_tree: OneTree

    @property
    def is_tour(self) -> bool:
        """True when the final 1-tree is itself an optimal tour."""
        return bool(np.all(self.one_tree.degrees == 2))


def held_karp_bound(
    instance,
    max_iterations: int = 200,
    initial_step: float | None = None,
    period_shrink: float = 0.95,
    tol: float = 1e-9,
) -> HeldKarpResult:
    """Maximize the 1-tree bound over node penalties.

    Parameters
    ----------
    instance:
        The TSP instance (dense distance matrix is materialized).
    max_iterations:
        Total subgradient steps.
    initial_step:
        First step length; default is ``bound / (2n)`` of the unpenalized
        1-tree, a standard self-scaling choice.
    period_shrink:
        Multiplicative decay applied to the step each iteration.
    tol:
        Ascent stops early when the step underflows or a tour is found.

    Returns the best (largest) bound seen, not merely the last one.
    """
    n = instance.n
    pi = np.zeros(n)
    best_bound = -np.inf
    best_pi = pi.copy()
    best_tree = None

    tree = minimum_one_tree(instance, pi)
    if np.all(tree.degrees == 2):
        return HeldKarpResult(tree.bound, pi, 0, tree)
    step = initial_step if initial_step is not None else max(tree.bound, 1.0) / (2.0 * n)

    prev_grad = np.zeros(n)
    it = 0
    for it in range(1, max_iterations + 1):
        grad = tree.degrees - 2.0
        # Smoothed subgradient (0.7/0.3 mix) reduces zig-zagging.
        direction = 0.7 * grad + 0.3 * prev_grad
        prev_grad = grad
        pi = pi + step * direction
        tree = minimum_one_tree(instance, pi)
        if tree.bound > best_bound:
            best_bound = tree.bound
            best_pi = pi.copy()
            best_tree = tree
        if np.all(tree.degrees == 2):
            break
        step *= period_shrink
        if step < tol:
            break

    if best_tree is None:  # pragma: no cover - first tree always recorded below
        best_tree = tree
        best_bound = tree.bound
        best_pi = pi.copy()
    return HeldKarpResult(best_bound, best_pi, it, best_tree)
