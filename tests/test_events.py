"""Tests for the event-log machinery."""

import pytest

from repro.core.events import Event, EventKind, EventLog


class TestEventLog:
    def test_record_and_iterate(self):
        log = EventLog(3)
        log.record(1.0, EventKind.INITIAL_TOUR, 100)
        log.record(2.0, EventKind.LOCAL_IMPROVEMENT, 90)
        log.record(2.5, EventKind.BROADCAST, 90)
        assert len(log) == 3
        assert [e.kind for e in log] == [
            EventKind.INITIAL_TOUR,
            EventKind.LOCAL_IMPROVEMENT,
            EventKind.BROADCAST,
        ]

    def test_of_kind(self):
        log = EventLog(0)
        log.record(1.0, EventKind.RESTART)
        log.record(2.0, EventKind.RESTART)
        log.record(3.0, EventKind.DONE, "budget")
        assert len(log.of_kind(EventKind.RESTART)) == 2
        assert log.of_kind(EventKind.DONE)[0].value == "budget"

    def test_improvements_filters_kinds(self):
        log = EventLog(1)
        log.record(1.0, EventKind.INITIAL_TOUR, 100)
        log.record(2.0, EventKind.PERTURBATION_STRENGTH, 2)
        log.record(3.0, EventKind.RECEIVED_IMPROVEMENT, 95)
        log.record(4.0, EventKind.LOCAL_IMPROVEMENT, 92)
        imps = log.improvements()
        assert imps == [(1.0, 100), (3.0, 95), (4.0, 92)]

    def test_events_are_frozen(self):
        e = Event(1.0, EventKind.DONE, "x")
        with pytest.raises(AttributeError):
            e.vsec = 2.0
