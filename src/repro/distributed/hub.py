"""Bootstrap hub (paper §2.2).

The hub is the single central component of the paper's system and is used
*only* during initialization: joining nodes contact it, receive a position
in the hypercube and a neighbour list built from the nodes the hub already
knows.  Because early joiners get sparse lists, the protocol's second half
has each node contact its listed neighbours, and a contacted node adds the
contacter to its own list — after every node has joined, the union of
links is the full (incomplete) hypercube.

This module reproduces that handshake faithfully (it is what the
``examples/bootstrap_protocol.py`` walk-through shows), and its
:meth:`Hub.final_topology` output is exactly
:func:`repro.distributed.topology.hypercube`, which the simulator uses
directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Hub", "BootstrapNode"]


@dataclass
class BootstrapNode:
    """Client-side bootstrap state of one node."""

    node_id: int
    position: int = -1
    neighbors: set = field(default_factory=set)

    def contact(self, other: "BootstrapNode") -> None:
        """TCP-style contact: the contacted node learns the contacter."""
        other.neighbors.add(self.position)


class Hub:
    """The bootstrap hub: assigns hypercube positions and neighbour lists."""

    def __init__(self, dimension: int):
        if dimension < 1:
            raise ValueError("dimension must be >= 1")
        self.dimension = dimension
        self.capacity = 1 << dimension
        self._assigned: dict[int, BootstrapNode] = {}  # position -> node

    def register(self, node: BootstrapNode) -> list[int]:
        """Register a node: assign the next free position, return the
        neighbour positions *already known to the hub* (possibly sparse)."""
        if len(self._assigned) >= self.capacity:
            raise RuntimeError("hypercube is full")
        position = len(self._assigned)
        node.position = position
        self._assigned[position] = node
        known = []
        for b in range(self.dimension):
            neigh = position ^ (1 << b)
            if neigh in self._assigned:
                known.append(neigh)
        node.neighbors.update(known)
        return known

    def run_contact_round(self) -> None:
        """Each node contacts its currently listed neighbours (protocol's
        second half); contacted nodes learn about the contacter."""
        for node in list(self._assigned.values()):
            for pos in sorted(node.neighbors):
                other = self._assigned.get(pos)
                if other is not None:
                    node.contact(other)

    def final_topology(self) -> dict[int, tuple[int, ...]]:
        """Neighbour map after bootstrap (positions as node ids)."""
        return {
            pos: tuple(sorted(n.neighbors))
            for pos, n in sorted(self._assigned.items())
        }

    @classmethod
    def bootstrap(cls, n_nodes: int) -> dict[int, tuple[int, ...]]:
        """Run the full protocol for ``n_nodes`` joining sequentially."""
        dim = max(1, int(np.ceil(np.log2(max(n_nodes, 2)))))
        hub = cls(dim)
        nodes = [BootstrapNode(i) for i in range(n_nodes)]
        for node in nodes:
            hub.register(node)
        hub.run_contact_round()
        return hub.final_topology()
