"""The paper's headline experiment in miniature (Figures 2c/2d, 3).

Compares, at the same *total* CPU budget:

* ABCC-CLK        — the sequential Chained LK (budget B);
* DistCLK 1 node  — the EA wrapper without cooperation (budget B);
* DistCLK 8 nodes — the full distributed algorithm (budget B/8 per node).

The distributed variant's cooperation (tour exchange + variable-strength
perturbation + restarts) is what the paper credits for beating plain CLK
at equal total work.

Run:  python examples/distributed_vs_sequential.py
"""

import numpy as np

from repro import solve
from repro.localsearch import chained_lk
from repro.tsp import generators
from repro.analysis import ascii_chart, format_series, sample

TOTAL_BUDGET = 24.0
N_NODES = 8


def main() -> None:
    instance = generators.drilling(200, rng=3, n_blocks=12)
    print(f"instance: {instance.name} (fl-class), n={instance.n}")
    print(f"total budget {TOTAL_BUDGET} vsec, distributed = "
          f"{N_NODES} x {TOTAL_BUDGET / N_NODES} vsec/node\n")

    clk = chained_lk(instance, budget_vsec=TOTAL_BUDGET, rng=5)
    dist1 = solve(instance, budget_vsec_per_node=TOTAL_BUDGET,
                  n_nodes=1, topology={0: ()}, rng=5)
    dist8 = solve(instance, budget_vsec_per_node=TOTAL_BUDGET / N_NODES,
                  n_nodes=N_NODES, rng=5)

    print(f"  ABCC-CLK            : {clk.length}")
    print(f"  DistCLK (1 node)    : {dist1.best_length}")
    print(f"  DistCLK ({N_NODES} nodes)   : {dist8.best_length}  "
          f"({dist8.network_stats.broadcasts} broadcasts)\n")

    # Common axis: *total* CPU time, so cooperation must pay for itself.
    times = np.linspace(1.0, TOTAL_BUDGET, 12)
    series = {
        "ABCC-CLK": sample(clk.trace, times),
        "DistCLK-1": sample(dist1.global_trace, times),
        # per-node time * N = total CPU for the 8-node variant
        f"DistCLK-{N_NODES}": sample(
            [(v * N_NODES, l) for v, l in dist8.global_trace], times
        ),
    }
    print(format_series(times, series, time_label="total vsec"))
    print()
    print(ascii_chart(times, series,
                      title="tour length vs total CPU time"))


if __name__ == "__main__":
    main()
