"""Per-node event logs.

The paper's §4.2.1 case study narrates runs through events: improvements
found, tours received, perturbation strength (``NumPerturbations``)
increases, restarts.  Every node records exactly those events with its
virtual timestamp; the analysis layer and the case-study bench read them
back.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["EventKind", "Event", "EventLog"]


class EventKind(enum.Enum):
    """Node life-cycle events."""

    INITIAL_TOUR = "initial_tour"
    LOCAL_IMPROVEMENT = "local_improvement"
    RECEIVED_IMPROVEMENT = "received_improvement"
    BROADCAST = "broadcast"
    PERTURBATION_STRENGTH = "perturbation_strength"
    RESTART = "restart"
    DONE = "done"


@dataclass(frozen=True)
class Event:
    """One timestamped node event; ``value`` depends on the kind:

    tour length for improvements/broadcasts, ``NumPerturbations`` for
    strength changes, the termination reason string for DONE."""

    vsec: float
    kind: EventKind
    value: object = None


class EventLog:
    """Append-only event list for one node."""

    def __init__(self, node_id: int):
        self.node_id = node_id
        self.events: list[Event] = []

    def record(self, vsec: float, kind: EventKind, value=None) -> None:
        self.events.append(Event(vsec, kind, value))

    def of_kind(self, kind: EventKind) -> list[Event]:
        return [e for e in self.events if e.kind is kind]

    def improvements(self) -> list[tuple[float, int]]:
        """(vsec, length) for every event that changed the node's best."""
        kinds = (
            EventKind.INITIAL_TOUR,
            EventKind.LOCAL_IMPROVEMENT,
            EventKind.RECEIVED_IMPROVEMENT,
        )
        return [(e.vsec, int(e.value)) for e in self.events if e.kind in kinds]

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)
