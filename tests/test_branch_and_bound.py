"""Tests for the branch-and-bound exact solver."""

import pytest

from repro.bounds import held_karp_exact
from repro.bounds.branch_and_bound import branch_and_bound
from repro.tsp import generators


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_dp_uniform(self, seed):
        inst = generators.uniform(13, rng=seed + 200)
        opt, _ = held_karp_exact(inst)
        res = branch_and_bound(inst)
        assert res.length == opt
        assert res.proven_optimal
        assert inst.tour_length(res.order) == res.length

    def test_matches_dp_with_bad_incumbent(self):
        # Force real branching by seeding a terrible upper bound.
        inst = generators.uniform(13, rng=55)
        opt, _ = held_karp_exact(inst)
        res = branch_and_bound(inst, initial_upper=3 * opt)
        assert res.length == opt
        assert res.proven_optimal

    def test_matches_dp_clustered(self):
        inst = generators.clustered(14, rng=9, n_clusters=3)
        opt, _ = held_karp_exact(inst)
        res = branch_and_bound(inst, initial_upper=2 * opt)
        assert res.length == opt

    def test_explicit_matrix(self):
        inst = generators.random_matrix(10, rng=4)
        opt, _ = held_karp_exact(inst)
        res = branch_and_bound(inst)
        assert res.length == opt

    def test_beyond_dp_range(self):
        """n=24: out of reach for the DP, fine for B&B; verify the
        incumbent CLK tour is confirmed optimal or improved."""
        inst = generators.uniform(24, rng=31)
        res = branch_and_bound(inst, max_nodes=20_000)
        assert res.proven_optimal
        assert inst.tour_length(res.order) == res.length


class TestNodeCap:
    def test_cap_reports_not_proven(self):
        inst = generators.grid_pcb(16, rng=2)
        opt, _ = held_karp_exact(inst)
        res = branch_and_bound(inst, initial_upper=3 * opt, max_nodes=1)
        # With one node the incumbent may or may not be proven; the
        # result must still be a valid tour no worse than the seed.
        assert inst.tour_length(res.order) == res.length
        assert res.length <= 3 * opt
        if res.length > opt:
            assert not res.proven_optimal
