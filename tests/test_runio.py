"""Tests for run persistence (save/load of experiment results)."""

import json

import pytest

from repro.analysis.runio import load_run, save_run
from repro.core import solve
from repro.localsearch import OpStats, chained_lk
from repro.tsp import generators


@pytest.fixture(scope="module")
def inst():
    return generators.uniform(40, rng=50)


class TestClkRoundTrip:
    def test_roundtrip(self, inst, tmp_path):
        res = chained_lk(inst, max_kicks=8, rng=1)
        path = tmp_path / "clk.json"
        save_run(res, path, instance_name=inst.name)
        back = load_run(path, inst)
        assert back.length == res.length
        assert back.trace == [(float(t), int(l)) for t, l in res.trace]
        assert back.kicks == res.kicks
        assert back.tour.is_valid()

    def test_op_stats_roundtrip(self, inst, tmp_path):
        res = chained_lk(inst, max_kicks=8, rng=1)
        path = tmp_path / "clk.json"
        save_run(res, path)
        back = load_run(path, inst)
        assert back.op_stats == res.op_stats
        assert back.op_stats.candidate_scans > 0

    def test_old_file_without_op_stats(self, inst, tmp_path):
        # Run files written before the engine telemetry existed must
        # still load, with zeroed stats.
        res = chained_lk(inst, max_kicks=3, rng=4)
        path = tmp_path / "clk.json"
        save_run(res, path)
        doc = json.loads(path.read_text())
        del doc["op_stats"]
        path.write_text(json.dumps(doc))
        back = load_run(path, inst)
        assert back.op_stats == OpStats()
        assert back.length == res.length

    def test_wrong_instance_rejected(self, inst, tmp_path):
        res = chained_lk(inst, max_kicks=3, rng=2)
        path = tmp_path / "clk.json"
        save_run(res, path)
        other = generators.uniform(40, rng=51)
        with pytest.raises(ValueError, match="wrong instance"):
            load_run(path, other)


class TestDistributedRoundTrip:
    def test_roundtrip(self, inst, tmp_path):
        res = solve(inst, budget_vsec_per_node=0.3, n_nodes=2,
                    topology="ring", rng=3)
        path = tmp_path / "dist.json"
        save_run(res, path, instance_name=inst.name)
        back = load_run(path, inst)
        assert back.best_length == res.best_length
        assert back.global_trace == [
            (float(t), int(l)) for t, l in res.global_trace
        ]
        assert back.reasons == res.reasons
        assert back.network_stats.broadcasts == res.network_stats.broadcasts
        # Event logs round-trip with kinds and timestamps.
        for nid, log in res.event_logs.items():
            loaded = back.event_logs[nid]
            assert [(e.vsec, e.kind, e.value) for e in log] == [
                (e.vsec, e.kind, e.value) for e in loaded
            ]
        # time_to_quality works on the loaded object.
        assert back.time_to_quality(res.best_length) is not None

    def test_op_stats_roundtrip(self, inst, tmp_path):
        res = solve(inst, budget_vsec_per_node=0.3, n_nodes=2,
                    topology="ring", rng=3)
        path = tmp_path / "dist.json"
        save_run(res, path)
        back = load_run(path, inst)
        assert set(back.op_stats) == set(res.op_stats)
        for nid, stats in res.op_stats.items():
            assert back.op_stats[nid] == stats
        assert back.total_op_stats() == res.total_op_stats()

    def test_old_file_without_op_stats(self, inst, tmp_path):
        res = solve(inst, budget_vsec_per_node=0.2, n_nodes=2,
                    topology="ring", rng=5)
        path = tmp_path / "dist.json"
        save_run(res, path)
        doc = json.loads(path.read_text())
        del doc["op_stats"]
        path.write_text(json.dumps(doc))
        back = load_run(path, inst)
        assert back.op_stats == {}
        assert back.total_op_stats() == OpStats()
        assert back.best_length == res.best_length

    def test_none_fields_tolerated(self, inst, tmp_path):
        # A writer with observability disabled (or a foreign tool) may
        # emit these keys with explicit nulls rather than omitting them;
        # loading must degrade to empty/zero exactly as for absent keys.
        res = solve(inst, budget_vsec_per_node=0.2, n_nodes=2,
                    topology="ring", rng=5)
        path = tmp_path / "dist.json"
        save_run(res, path)
        doc = json.loads(path.read_text())
        doc["network"]["gossip_log"] = None
        doc["network"]["gossip_pushes"] = None
        doc["network"]["broadcast_log"] = None
        doc["network"]["delivered"] = None
        doc["op_stats"] = None
        doc["global_trace"] = None
        path.write_text(json.dumps(doc))
        back = load_run(path, inst)
        assert back.network_stats.gossip_log == []
        assert back.network_stats.broadcast_log == []
        assert back.network_stats.gossip_pushes == 0
        assert back.op_stats == {}
        assert back.global_trace == []
        assert back.best_length == res.best_length

    def test_none_op_stats_fields_tolerated(self, inst, tmp_path):
        from repro.localsearch import chained_lk

        res = chained_lk(inst, max_kicks=3, rng=4)
        path = tmp_path / "clk.json"
        save_run(res, path)
        doc = json.loads(path.read_text())
        doc["op_stats"] = {f: None for f in doc["op_stats"]}
        doc["trace"] = None
        path.write_text(json.dumps(doc))
        back = load_run(path, inst)
        assert back.op_stats == OpStats()
        assert back.trace == []

    def test_unknown_type_rejected(self, inst, tmp_path):
        with pytest.raises(TypeError, match="serialize"):
            save_run({"not": "a result"}, tmp_path / "x.json")

    def test_bad_format_version(self, inst, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": 99, "type": "clk"}')
        with pytest.raises(ValueError, match="format"):
            load_run(path, inst)


class TestTraceIO:
    def test_save_load_trace_round_trip(self, tmp_path):
        from repro.analysis.runio import load_trace, save_trace
        from repro.obs import Tracer

        tracer = Tracer(enabled=True)
        with tracer.span("root", node=0):
            pass
        tracer.metrics.inc("engine.calls", 3, node=0)
        path = tmp_path / "run.trace.jsonl"
        save_trace(tracer, path)
        back = load_trace(path)
        assert [s.name for s in back.spans] == ["root"]
        assert back.counters["engine.calls"][(("node", "0"),)] == 3


class TestStats:
    def test_instance_stats_classes(self):
        from repro.tsp.stats import instance_stats

        drill = instance_stats(generators.drilling(150, rng=1))
        unif = instance_stats(generators.uniform(150, rng=1))
        clust = instance_stats(generators.clustered(150, rng=1, spread=0.02))
        assert drill.nn_mode_share > unif.nn_mode_share
        assert clust.dispersion > unif.dispersion
        assert "drilling" in drill.guessed_class
        assert "uniform" in unif.guessed_class
        assert "clustered" in clust.guessed_class

    def test_explicit_instance_stats(self, explicit_instance):
        from repro.tsp.stats import instance_stats

        s = instance_stats(explicit_instance)
        assert s.n == explicit_instance.n
        assert s.bbox == (0.0, 0.0)
        assert s.format()  # renders without error
