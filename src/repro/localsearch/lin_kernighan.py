"""Lin-Kernighan variable-depth local search.

The implementation follows the classic array-based formulation (Johnson &
McGeoch): an LK move of depth *k* is realized as a sequence of 2-opt
*flips*, each of which keeps the tour Hamiltonian.  From a base city
``t1`` with tour neighbour ``u``:

1. conceptually break the closing edge ``(t1, u)`` — gain ``G = d(t1, u)``;
2. pick ``v`` among ``u``'s candidate neighbours with ``G - d(u, v) > 0``;
3. let ``w`` be the tour neighbour of ``v`` on the ``u`` side; the 2-opt
   flip removing ``{t1,u}, {v,w}`` and adding ``{u,v}, {w,t1}`` re-closes
   the tour.  ``w`` becomes the new ``u`` and the search deepens.

The cumulative tour delta is tracked per flip; at the end the chain is
unwound to the best prefix (possibly all the way).  Candidates are scanned
best-first with the standard lookahead score ``G - d(u,v) + d(v,w)``, with
configurable breadth at the first levels (linkern-style backtracking) and
greedy descent below.

Don't-look bits restrict attention to recently touched cities, which is
what makes Chained LK cheap after a kick: only the cities incident to the
kick's edges are woken.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

from ..tsp.tour import Tour
from ..utils.work import WorkMeter

__all__ = ["LKConfig", "LinKernighan", "lin_kernighan"]


@dataclass(frozen=True)
class LKConfig:
    """Tuning knobs for the LK engine (defaults mirror linkern's spirit)."""

    #: Neighbour-list size for candidate edges.
    neighbor_k: int = 8
    #: Maximum chain depth (number of flips in one LK move).
    max_depth: int = 50
    #: Candidate breadth per level; levels beyond the tuple are greedy (1).
    breadth: tuple = (5, 3, 1)
    #: Use quadrant neighbour lists instead of plain k-NN when geometric.
    use_quadrant_neighbors: bool = False

    def breadth_at(self, level: int) -> int:
        if level < len(self.breadth):
            return max(1, int(self.breadth[level]))
        return 1




class LinKernighan:
    """Reusable LK optimizer bound to one instance.

    Construct once per instance (neighbour lists are built eagerly), then
    call :meth:`optimize` on any tour of that instance.  The object is
    stateless between calls except for scratch buffers.
    """

    def __init__(self, instance, config: LKConfig | None = None):
        self.instance = instance
        self.config = config or LKConfig()
        k = min(self.config.neighbor_k, instance.n - 1)
        if self.config.use_quadrant_neighbors and instance.is_geometric:
            per_quad = max(1, k // 4)
            self.neighbors = instance.quadrant_neighbor_lists(per_quad)
            self._neighbor_rows = instance.quadrant_neighbor_row_lists(per_quad)
        else:
            self.neighbors = instance.neighbor_lists(k)
            self._neighbor_rows = instance.neighbor_row_lists(k)
        self._in_queue = np.zeros(instance.n, dtype=bool)
        # Hot-loop distance access: plain nested lists beat numpy scalar
        # indexing by ~3x; fall back to the instance closure when the
        # dense matrix would not fit.  Both list forms are cached on the
        # instance so the nodes of a distributed run share one copy
        # instead of re-materializing O(n^2) Python objects each.
        self._dist_rows = instance.matrix_row_lists()
        if self._dist_rows is None:
            self._dist_fn = instance.dist

    # -- public API ---------------------------------------------------------

    def optimize(
        self,
        tour: Tour,
        meter: WorkMeter | None = None,
        dirty: Optional[Iterable[int]] = None,
        fixed: Optional[set] = None,
    ) -> int:
        """Optimize ``tour`` in place; returns total improvement (>= 0).

        ``dirty`` seeds the don't-look queue; when omitted every city is
        active (full optimization).  Passing only the cities touched by a
        kick makes re-optimization after a perturbation nearly free.
        ``fixed`` is a set of directed city pairs (both orientations) the
        search must not break — Bachem & Wottawa's *partial reduction*,
        used by the backbone extension.  Interruptible at move boundaries
        via ``meter``.
        """
        if tour.instance is not self.instance:
            raise ValueError("tour belongs to a different instance")
        meter = meter if meter is not None else WorkMeter()
        n = tour.n

        in_queue = self._in_queue
        in_queue[:] = False
        if dirty is None:
            queue = deque(int(c) for c in tour.order)
            in_queue[:] = True
        else:
            queue = deque()
            for c in dirty:
                c = int(c)
                if not in_queue[c]:
                    in_queue[c] = True
                    queue.append(c)

        total = 0
        while queue and not meter.exhausted():
            t1 = queue.popleft()
            in_queue[t1] = False
            gain, touched = self._improve_city(tour, t1, meter, fixed)
            if gain > 0:
                total += gain
                for c in touched:
                    if not in_queue[c]:
                        in_queue[c] = True
                        queue.append(c)
        return total

    # -- internals -----------------------------------------------------------

    def _dist(self, i: int, j: int) -> int:
        rows = self._dist_rows
        if rows is not None:
            return rows[i][j]
        return self._dist_fn(i, j)

    def _apply_flip(self, tour: Tour, t1: int, u: int, v: int, w: int,
                    meter: WorkMeter) -> int:
        """2-opt flip removing ``{t1,u}, {v,w}``, adding ``{t1,w}, {u,v}``.

        Returns the signed length delta.  Orientation-safe: works whether
        ``u`` is the successor or predecessor of ``t1`` in the array.
        """
        d = self._dist
        delta = d(t1, w) + d(u, v) - d(t1, u) - d(v, w)
        if tour.next(t1) == u:
            # forward: t1 -> u ... w -> v; reverse u..w
            assert tour.next(w) == v, "w must precede v on the u side"
            moved = tour.reverse_segment(tour.position[u], tour.position[w])
        else:
            # backward: v -> w ... u -> t1; reverse w..u
            assert tour.prev(t1) == u and tour.next(v) == w, "invalid flip"
            moved = tour.reverse_segment(tour.position[w], tour.position[u])
        tour.length += delta
        meter.tick(moved + 1)
        return delta

    def _improve_city(self, tour: Tour, t1: int, meter: WorkMeter,
                      fixed: Optional[set] = None):
        """Try to find an improving LK move anchored at ``t1``.

        Returns ``(gain, touched_cities)``; gain is 0 when no improvement
        was kept (the tour is then exactly as before).
        """
        for u0 in (tour.next(t1), tour.prev(t1)):
            if fixed is not None and (t1, u0) in fixed:
                continue
            gain, touched = self._search_chain(tour, t1, u0, meter, fixed)
            if gain > 0:
                return gain, touched
            if meter.exhausted():
                break
        return 0, ()

    def _candidates(self, tour: Tour, t1: int, u: int, g_open: float,
                    removed: set, added: set, breadth: int,
                    meter: WorkMeter, fixed: Optional[set] = None):
        """Valid (v, w) continuations from endpoint ``u``, best-first.

        Yields at most ``breadth`` pairs ordered by the lookahead score
        ``g_open - d(u, v) + d(v, w)``.
        """
        rows = self._dist_rows
        du = rows[u] if rows is not None else None
        dist = self._dist_fn if du is None else None
        forward = tour.next(t1) == u
        order = tour.order
        position = tour.position
        n = tour.n
        out = []
        scanned = 0
        for v in self._neighbor_rows[u]:
            scanned += 1
            duv = du[v] if du is not None else dist(u, v)
            if duv >= g_open:
                break  # sorted by distance: no further candidate has gain
            if v == t1 or v == u:
                continue
            if (u, v) in removed:
                continue
            if forward:
                w = int(order[position[v] - 1])
            else:
                p = position[v] + 1
                w = int(order[p if p < n else 0])
            if w == t1 or w == u:
                continue
            if (v, w) in added or (v, w) in removed:
                continue
            if fixed is not None and (v, w) in fixed:
                continue
            dvw = rows[v][w] if rows is not None else dist(v, w)
            out.append((g_open - duv + dvw, duv, dvw, v, w))
        meter.tick(scanned)
        out.sort(reverse=True)
        return out[:breadth]

    def _search_chain(self, tour: Tour, t1: int, u0: int, meter: WorkMeter,
                      fixed: Optional[set] = None):
        """Grow one LK chain from (t1, u0); keep the best prefix if improving.

        Backtracking: at levels with breadth > 1 the alternatives are
        explored depth-first; the first chain that yields a strict
        improvement is kept (first-improvement, as in linkern).
        """
        cfg = self.config
        flips: list[tuple] = []  # (t1, u, v, w) per applied flip
        touched: set[int] = {t1, u0}

        best_delta = 0  # strictly negative = improvement
        best_len = 0

        # Edge sets hold both orientations so membership is one lookup.
        removed: set = {(t1, u0), (u0, t1)}
        added: set = set()

        def undo_to(k: int) -> None:
            while len(flips) > k:
                ft1, fu, fv, fw = flips.pop()
                # Inverse flip: remove {t1,w},{u,v}; add back {t1,u},{v,w}.
                self._apply_flip(tour, ft1, fw, fv, fu, meter)
                removed.discard((fv, fw))
                removed.discard((fw, fv))
                added.discard((fu, fv))
                added.discard((fv, fu))

        def dfs(u: int, g_open: float, delta: int, level: int) -> bool:
            """Returns True when an improving chain has been accepted."""
            nonlocal best_delta, best_len
            if level >= cfg.max_depth or meter.exhausted():
                return False
            cands = self._candidates(
                tour, t1, u, g_open, removed, added, cfg.breadth_at(level),
                meter, fixed,
            )
            for _score, duv, dvw, v, w in cands:
                d = self._apply_flip(tour, t1, u, v, w, meter)
                flips.append((t1, u, v, w))
                removed.add((v, w))
                removed.add((w, v))
                added.add((u, v))
                added.add((v, u))
                touched.update((u, v, w))
                new_delta = delta + d
                if new_delta < best_delta:
                    best_delta = new_delta
                    best_len = len(flips)
                    # First-improvement: extend greedily from here, then stop.
                    dfs(w, g_open - duv + dvw, new_delta, level + 1)
                    return True
                if dfs(w, g_open - duv + dvw, new_delta, level + 1):
                    return True
                undo_to(len(flips) - 1)
            return False

        dfs(u0, float(self._dist(t1, u0)), 0, 0)
        if best_delta < 0:
            undo_to(best_len)
            return -best_delta, tuple(touched)
        undo_to(0)
        return 0, ()


def lin_kernighan(
    tour: Tour,
    config: LKConfig | None = None,
    meter: WorkMeter | None = None,
    dirty: Optional[Iterable[int]] = None,
) -> int:
    """One-shot convenience wrapper around :class:`LinKernighan`.

    Prefer constructing :class:`LinKernighan` once when optimizing many
    tours of the same instance (neighbour lists are reused).
    """
    return LinKernighan(tour.instance, config).optimize(tour, meter, dirty)
