"""Work accounting: the virtual CPU clock.

The paper reports results against *CPU seconds per node*.  Re-running its
protocol under wall-clock time on one machine would be (a) slow and (b)
non-deterministic, so the LK engine instead counts elementary operations —
candidate-edge evaluations and city moves during segment reversals — in a
:class:`WorkMeter`.  One "virtual second" (vsec) is :data:`OPS_PER_VSEC`
operations, calibrated so a vsec is roughly a real CPU second of the Python
engine on a 2020s laptop.  The discrete-event simulator advances each
node's clock by the work its CLK calls consumed, which reproduces exactly
the per-node CPU-time accounting of the paper, deterministically.

A :class:`WorkMeter` can carry a budget; hot loops call :meth:`tick` and
the engine checks :meth:`exhausted` at safe interruption points.
"""

from __future__ import annotations

__all__ = ["WorkMeter", "OPS_PER_VSEC"]

#: Elementary LK operations per virtual second.
OPS_PER_VSEC = 200_000.0


class WorkMeter:
    """Counts elementary operations; optionally enforces a budget.

    Budgets are expressed in operations; convenience constructors/properties
    convert from/to virtual seconds.
    """

    __slots__ = ("ops", "budget_ops")

    def __init__(self, budget_ops: float | None = None):
        self.ops = 0
        self.budget_ops = budget_ops

    @classmethod
    def with_vsec_budget(cls, vsec: float) -> "WorkMeter":
        return cls(budget_ops=vsec * OPS_PER_VSEC)

    def tick(self, k: int = 1) -> None:
        """Record ``k`` elementary operations."""
        self.ops += k

    @property
    def vsec(self) -> float:
        """Work consumed so far, in virtual seconds."""
        return self.ops / OPS_PER_VSEC

    def exhausted(self) -> bool:
        """True when a budget is set and has been used up."""
        return self.budget_ops is not None and self.ops >= self.budget_ops

    def remaining_ops(self) -> float:
        if self.budget_ops is None:
            return float("inf")
        return max(0.0, self.budget_ops - self.ops)

    def reset(self) -> None:
        self.ops = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.budget_ops is None:
            return f"WorkMeter(ops={self.ops})"
        return f"WorkMeter(ops={self.ops}/{self.budget_ops:.0f})"
