"""TSPLIB file workflow: write, read, solve, export the tour.

The library bundles no TSPLIB data (the testbed is generated), but real
``.tsp`` files drop straight in.  This example creates one on disk,
reads it back, solves it, and writes a ``.tour`` file — the round trip a
user with their own TSPLIB instances needs.

Run:  python examples/tsplib_workflow.py [path/to/instance.tsp]
"""

import sys
import tempfile
from pathlib import Path

from repro import solve
from repro.tsp import generators, tsplib


def main() -> None:
    if len(sys.argv) > 1:
        tsp_path = Path(sys.argv[1])
        print(f"loading user instance {tsp_path}")
        instance = tsplib.load(tsp_path)
        out_dir = tsp_path.parent
    else:
        out_dir = Path(tempfile.mkdtemp(prefix="repro-tsplib-"))
        tsp_path = out_dir / "demo.tsp"
        print(f"no file given; generating a demo instance at {tsp_path}")
        tsplib.dump(generators.grid_pcb(120, rng=4, name="demo120"), tsp_path)
        instance = tsplib.load(tsp_path)

    print(f"instance: {instance.name}, n={instance.n}, "
          f"metric {instance.edge_weight_type}")

    result = solve(instance, budget_vsec_per_node=2.0, n_nodes=4, rng=0)
    print(f"best tour: {result.best_length}")

    tour_path = out_dir / f"{instance.name}.tour"
    tsplib.dump_tour(result.best_tour, tour_path, name=instance.name)
    print(f"tour written to {tour_path}")

    # Verify the round trip.
    back = tsplib.load_tour(tour_path, instance)
    assert back.length == result.best_length
    print("tour file round-trip verified.")


if __name__ == "__main__":
    main()
