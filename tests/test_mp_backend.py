"""Tests for the multiprocessing backend (real parallelism).

These run actual OS processes; budgets are kept tiny.  Only invariants
are asserted — wall-clock runs are not reproducible by design.

The ``timeout`` markers are honoured when pytest-timeout is installed
(it is in the dev extras) and are inert no-ops otherwise; they are the
backstop proving the fault-tolerance claim — a run with dead workers
must return, not hang.
"""

import time

import pytest

from repro.core.node import NodeConfig
from repro.distributed.mp_backend import run_multiprocessing
from repro.tsp import generators


@pytest.mark.slow
@pytest.mark.timeout(300)
def test_two_process_run_produces_valid_tour():
    inst = generators.uniform(40, rng=0)
    res = run_multiprocessing(
        inst,
        budget_seconds=2.0,
        n_nodes=2,
        node_config=NodeConfig(inner_kicks=2),
        topology="ring",
        rng=0,
    )
    tour = res.tour(inst)
    assert tour.is_valid()
    assert tour.length == res.best_length == tour.recompute_length()
    assert set(res.node_lengths) == {0, 1}
    assert res.best_length == min(res.node_lengths.values())
    assert all(r in ("budget", "optimum", "notified")
               for r in res.reasons.values())
    assert res.crashed_nodes == () and res.total_restarts == 0


@pytest.mark.slow
@pytest.mark.timeout(300)
def test_budget_overshoot_bounded():
    """Workers honour the wall-clock budget at LK move boundaries.

    The old backend handed ``compute`` an effectively infinite vsec
    budget, so one EA iteration could overshoot the deadline by the
    full runtime of a chained-LK pass.  With the pacer the overshoot is
    at most one short compute slice.
    """
    budget = 2.0
    res = run_multiprocessing(
        generators.uniform(60, rng=2),
        budget_seconds=budget,
        n_nodes=2,
        node_config=NodeConfig(inner_kicks=2),
        topology="ring",
        rng=4,
    )
    for node_id, report in res.node_reports.items():
        assert report.loop_seconds <= budget + 1.5, (
            f"node {node_id} overshot: {report.loop_seconds:.2f}s"
        )
        assert report.iterations > 1  # paced into multiple slices


@pytest.mark.slow
@pytest.mark.timeout(300)
def test_target_terminates_early():
    from repro.bounds import held_karp_exact

    inst = generators.uniform(12, rng=5)
    opt, _ = held_karp_exact(inst)
    res = run_multiprocessing(
        inst,
        budget_seconds=30.0,
        n_nodes=2,
        node_config=NodeConfig(inner_kicks=2, target_length=opt),
        topology="ring",
        rng=1,
    )
    assert res.best_length == opt
    assert res.elapsed_seconds < 30.0


@pytest.mark.slow
@pytest.mark.timeout(300)
def test_notification_survives_full_inboxes():
    """OPTIMUM_FOUND floods through even when every inbox is saturated.

    With ``inbox_maxsize=2`` the tour traffic keeps the queues full; the
    old backend's notification send raised ``queue.Full`` and was
    swallowed, leaving the neighbours to burn their whole budget.  The
    never-drop path evicts queued tours instead, so everyone stops on
    optimum/notified.
    """
    from repro.bounds import held_karp_exact

    inst = generators.uniform(12, rng=5)
    opt, _ = held_karp_exact(inst)
    res = run_multiprocessing(
        inst,
        budget_seconds=20.0,
        n_nodes=3,
        node_config=NodeConfig(inner_kicks=2, target_length=opt),
        topology="ring",
        rng=1,
        inbox_maxsize=2,
    )
    assert res.best_length == opt
    assert all(r in ("optimum", "notified") for r in res.reasons.values()), (
        res.reasons
    )


@pytest.mark.slow
@pytest.mark.timeout(600)
def test_killed_worker_does_not_hang_run():
    """ISSUE acceptance scenario: 8-node hypercube, node 3 hard-killed.

    The run must return promptly (not the old ``budget*3 + 60`` wait),
    report node 3 as crashed, and the surviving seven nodes must still
    converge and terminate via OPTIMUM_FOUND flooding.
    """
    from repro.localsearch.chained_lk import chained_lk

    inst = generators.uniform(100, rng=9)
    target = chained_lk(inst, max_kicks=60, rng=1).tour.length
    budget = 20.0
    t0 = time.monotonic()
    res = run_multiprocessing(
        inst,
        budget_seconds=budget,
        n_nodes=8,
        node_config=NodeConfig(inner_kicks=2, target_length=target),
        topology="hypercube",
        rng=3,
        kill_at={3: 0.5},
    )
    elapsed = time.monotonic() - t0
    # Slack covers single-core spawn startup (~25s for 8 workers) and
    # shutdown, not a timeout-based crash diagnosis.
    assert elapsed < budget + 70.0
    assert res.reasons[3] == "crashed"
    assert res.crashed_nodes == (3,)
    assert res.node_reports[3].exitcode == 1
    assert 3 not in res.node_lengths
    survivors = [i for i in range(8) if i != 3]
    assert all(res.reasons[i] in ("optimum", "notified") for i in survivors), (
        res.reasons
    )
    assert res.best_length <= target
    assert res.tour(inst).is_valid()


@pytest.mark.slow
@pytest.mark.timeout(300)
def test_restart_on_crash_recovers_node():
    inst = generators.uniform(40, rng=0)
    res = run_multiprocessing(
        inst,
        budget_seconds=6.0,
        n_nodes=2,
        node_config=NodeConfig(inner_kicks=2),
        topology="ring",
        rng=0,
        kill_at={1: 0.5},
        restart="on_crash",
    )
    assert res.total_restarts == 1
    assert res.node_reports[1].restarts == 1
    assert res.node_reports[1].exit_status == "ok"
    assert res.crashed_nodes == ()
    assert set(res.node_lengths) == {0, 1}


@pytest.mark.slow
@pytest.mark.timeout(300)
def test_all_workers_crashed_fails_fast():
    """Every worker dead → RuntimeError with a per-node report, fast."""
    inst = generators.uniform(40, rng=0)
    t0 = time.monotonic()
    with pytest.raises(RuntimeError, match="node 0.*crashed"):
        run_multiprocessing(
            inst,
            budget_seconds=30.0,
            n_nodes=2,
            node_config=NodeConfig(inner_kicks=2),
            topology="ring",
            rng=0,
            kill_at={0: 0.3, 1: 0.3},
        )
    # Far below the 30s budget: crashes are detected via process
    # sentinels, not by waiting out a multiple of the budget.
    assert time.monotonic() - t0 < 25.0


def test_argument_validation():
    inst = generators.uniform(10, rng=0)
    with pytest.raises(ValueError, match="budget_seconds"):
        run_multiprocessing(inst, budget_seconds=0.0, n_nodes=2)
    with pytest.raises(ValueError, match="kill_at"):
        run_multiprocessing(
            inst, budget_seconds=1.0, n_nodes=2, topology="ring",
            kill_at={5: 0.1},
        )
    # Must raise before any worker is spawned — late validation leaked
    # orphaned processes that crashed on the dead manager.
    with pytest.raises(ValueError, match="restart policy"):
        run_multiprocessing(
            inst, budget_seconds=1.0, n_nodes=2, topology="ring",
            restart="sometimes",
        )
