"""ASCII rendering of instances and tours.

Terminal-friendly visual sanity checks: a scatter of the cities, the
tour's edges rasterized onto a character grid, or both.  Used by the
examples and handy in a REPL when a tour "looks wrong" numerically.
"""

from __future__ import annotations

import numpy as np

__all__ = ["plot_instance", "plot_tour"]

_CITY = "o"
_EDGE = "."


def _raster(coords: np.ndarray, width: int, height: int):
    lo = coords.min(axis=0)
    span = coords.max(axis=0) - lo
    span[span == 0] = 1.0
    xs = ((coords[:, 0] - lo[0]) / span[0] * (width - 1)).astype(int)
    ys = ((coords[:, 1] - lo[1]) / span[1] * (height - 1)).astype(int)
    return xs, ys


def plot_instance(instance, width: int = 72, height: int = 24) -> str:
    """Scatter the cities of a geometric instance on a character grid."""
    if instance.coords is None:
        raise ValueError("plotting requires coordinates")
    xs, ys = _raster(instance.coords, width, height)
    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        grid[height - 1 - y][x] = _CITY
    body = "\n".join("".join(row) for row in grid)
    return f"{instance.name} (n={instance.n})\n{body}"


def _draw_line(grid, x0, y0, x1, y1) -> None:
    """Bresenham-ish line of edge glyphs (endpoints left to the caller)."""
    steps = max(abs(x1 - x0), abs(y1 - y0))
    for k in range(1, steps):
        t = k / steps
        x = round(x0 + (x1 - x0) * t)
        y = round(y0 + (y1 - y0) * t)
        if grid[y][x] == " ":
            grid[y][x] = _EDGE


def plot_tour(tour, width: int = 72, height: int = 24) -> str:
    """Render a tour: cities as ``o``, edges as dotted lines."""
    instance = tour.instance
    if instance.coords is None:
        raise ValueError("plotting requires coordinates")
    xs, ys = _raster(instance.coords, width, height)
    grid = [[" "] * width for _ in range(height)]
    order = tour.order
    n = len(order)
    for k in range(n):
        a, b = int(order[k]), int(order[(k + 1) % n])
        _draw_line(
            grid,
            xs[a], height - 1 - ys[a],
            xs[b], height - 1 - ys[b],
        )
    for x, y in zip(xs, ys):
        grid[height - 1 - y][x] = _CITY
    body = "\n".join("".join(row) for row in grid)
    return (
        f"{instance.name} (n={instance.n}), tour length {tour.length}\n{body}"
    )
