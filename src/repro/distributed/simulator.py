"""Discrete-event simulator for the distributed algorithm.

Replaces the paper's 8-machine cluster with a deterministic virtual-time
simulation (see DESIGN.md §2).  Every node owns a virtual CPU clock in
"virtual seconds" (vsec) advanced by the work its CLK calls actually
perform (operation counting, :mod:`repro.utils.work`).  The scheduler
always runs the laggard — the active node with the smallest clock — for
one EA iteration, so cross-node causality matches an asynchronous cluster:
a tour broadcast by node A at its time *t* is visible to node B the first
time B's clock passes ``t + latency``.

Termination per node: target length reached locally, an OPTIMUM_FOUND
notification received (which the node forwards before stopping), or the
per-node work budget.  As in the paper, finished nodes simply drop out and
the topology degenerates around them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..core.node import EANode, NodeConfig
from ..obs import get_tracer
from ..tsp.tour import Tour
from ..utils.rng import ensure_rng, spawn_rngs
from ..utils.sanitize import (
    check_message_conservation,
    check_tour,
    sanitize_enabled,
)
from .churn import make_schedule, validate_schedule
from .message import MessageKind, tour_payload
from .network import LatencyModel, NetworkStats, SimulatedNetwork
from .topology import get_topology, hypercube

__all__ = ["SimulationResult", "Simulator", "run_simulation"]


@dataclass
class SimulationResult:
    """Everything the analysis layer needs from one distributed run."""

    best_tour: Tour
    best_node: int
    #: Per-node virtual time at which the winning length first existed
    #: anywhere in the network.
    best_found_at: float
    #: Termination reason per node id.
    reasons: dict
    #: Final virtual clock per node id.
    clocks: dict
    #: Per-node event logs (node id -> EventLog).
    event_logs: dict
    network_stats: NetworkStats
    #: Merged anytime curve: sorted (vsec, running-best length) steps,
    #: with vsec measured per node (the paper's "CPU time per node").
    global_trace: list = field(default_factory=list)
    #: Per-node engine telemetry (node id -> OpStats): candidate scans,
    #: flips applied/undone, reversal swaps, queue wakeups.
    op_stats: dict = field(default_factory=dict)

    def total_op_stats(self):
        """Network-wide engine telemetry (sum over nodes)."""
        from ..localsearch.engine import OpStats

        total = OpStats()
        for s in self.op_stats.values():
            total.merge(s)
        return total

    @property
    def best_length(self) -> int:
        return self.best_tour.length

    def hit_target(self) -> bool:
        return any(r == "optimum" for r in self.reasons.values())

    def time_to_quality(self, length: int) -> Optional[float]:
        """Earliest per-node vsec at which the network held a tour of at
        most ``length``; None if never reached."""
        for vsec, best in self.global_trace:
            if best <= length:
                return vsec
        return None


class Simulator:
    """Builds the node set + network and runs the event loop."""

    def __init__(
        self,
        instance,
        n_nodes: int = 8,
        node_config: NodeConfig | None = None,
        topology: str | dict = "hypercube",
        latency: LatencyModel | None = None,
        churn=None,
        dissemination: str = "broadcast",
        gossip_fanout: int = 3,
        rng=None,
    ):
        """``churn`` is an optional schedule of (vsec, action, node_id)
        membership events (see :mod:`repro.distributed.churn`); joiner
        ids extend the universe beyond ``n_nodes`` and the topology grows
        along hypercube positions.  ``dissemination`` selects how
        improvements spread: "broadcast" (paper: all topology
        neighbours) or "gossip" (epidemic push to ``gossip_fanout``
        random alive peers, cf. the DREAM system the paper cites)."""
        self.instance = instance
        self.config = node_config or NodeConfig()
        self._churn = make_schedule(churn) if churn else []
        n_joiners = sum(1 for e in self._churn if e.action == "join")
        n_total = n_nodes + n_joiners
        if self._churn:
            validate_schedule(self._churn, n_nodes, n_total)
            if not isinstance(topology, str) or topology != "hypercube":
                raise ValueError("churn currently requires the hypercube "
                                 "topology (hub-assigned positions)")
            topology = hypercube(n_total)
        elif isinstance(topology, str):
            topology = get_topology(topology, n_total)
        if set(topology) != set(range(n_total)):
            raise ValueError(f"topology ids must be 0..{n_total - 1}")
        if dissemination not in ("broadcast", "gossip"):
            raise ValueError(f"unknown dissemination {dissemination!r}")
        self.dissemination = dissemination
        self.gossip_fanout = max(1, int(gossip_fanout))
        # Observability: captured once; the network gets the metrics
        # registry so it can record per-message delivery latency.
        self.tracer = get_tracer()
        self.network = SimulatedNetwork(
            topology, latency,
            metrics=self.tracer.metrics if self.tracer.enabled else None,
        )
        parent = ensure_rng(rng)
        self._gossip_rng = ensure_rng(int(parent.integers(2**63 - 1)))
        rngs = spawn_rngs(parent, n_total)
        self.nodes = [
            EANode(i, instance, self.config, rngs[i]) for i in range(n_total)
        ]
        self._join_at = {
            e.node_id: e.vsec for e in self._churn if e.action == "join"
        }
        self._leave_at = {
            e.node_id: e.vsec for e in self._churn if e.action == "leave"
        }
        for node_id, at in self._join_at.items():
            self.nodes[node_id].clock = at
        # Read the env flag once at construction; per-step checks must not
        # re-read the environment (cost and mid-run toggling both).
        self._sanitize = sanitize_enabled()
        #: Per-node vsec budget, set by :meth:`begin`.
        self._budget: Optional[float] = None

    # -- step-wise execution (the service layer's cooperative seam) ----------

    def begin(self, budget_vsec_per_node: float) -> None:
        """Arm the event loop with a per-node budget (idempotent-hostile:
        a simulator runs exactly once)."""
        if budget_vsec_per_node <= 0:
            raise ValueError("budget must be positive")
        if self._budget is not None:
            raise RuntimeError("simulator already started")
        self._budget = budget_vsec_per_node

    def _deadline(self, node) -> float:
        assert self._budget is not None
        leave = self._leave_at.get(node.node_id, float("inf"))
        return min(self._budget, leave)

    def step(self):
        """Run the laggard node for one EA iteration.

        Returns the stepped :class:`~repro.core.node.EANode`, or ``None``
        when no node is runnable (the run is over — call
        :meth:`finalize`).  Between any two calls the caller may inspect
        node state, emit progress events, or decide to stop early; the
        schedule is a pure function of node clocks, so slicing the loop
        this way cannot change the result.
        """
        if self._budget is None:
            raise RuntimeError("call begin(budget) before step()")
        runnable = [
            n for n in self.nodes
            if not n.done and n.clock < self._deadline(n)
        ]
        if not runnable:
            return None
        node = min(runnable, key=lambda n: (n.clock, n.node_id))
        if self.tracer.enabled:
            with self.tracer.span(
                "sim.step", vt=lambda: node.clock, node=node.node_id
            ):
                self._run_step(node, self._deadline(node))
        else:
            self._run_step(node, self._deadline(node))
        if not node.done and node.clock >= self._deadline(node):
            leave = self._leave_at.get(node.node_id, float("inf"))
            node.stop("left" if node.clock >= leave else "budget")
        return node

    def finalize(self, reason: str = "budget") -> SimulationResult:
        """Stop any still-running nodes with ``reason`` and collect the
        result.  Called with ``"cancelled"`` by a cooperative caller that
        abandons the run before :meth:`step` returns ``None``."""
        for node in self.nodes:
            if not node.done:
                node.stop(reason)
            # Release any batch-kick pools (no-op at the default width).
            node.close()
        return self._collect_result()

    @property
    def consumed_vsec(self) -> float:
        """Total virtual CPU consumed so far (sum of node clocks)."""
        return sum(n.clock for n in self.nodes)

    def run(self, budget_vsec_per_node: float,
            progress=None) -> SimulationResult:
        """Run until every node terminates; budget is per node, as in the
        paper ('10^3 CPU seconds per node').

        ``progress`` is an optional cooperative callback invoked after
        every scheduler step with ``(simulator, stepped_node)``; a truthy
        return value cancels the run (remaining nodes stop with reason
        ``"cancelled"``).  The callback must not mutate solver state.
        """
        self.begin(budget_vsec_per_node)
        while True:
            node = self.step()
            if node is None:
                return self.finalize()
            if progress is not None and progress(self, node):
                return self.finalize("cancelled")

    def _run_step(self, node, node_deadline: float) -> None:
        """One EA iteration of ``node``: compute, collect, select, send."""
        net = self.network
        work, candidate = node.compute(node_deadline - node.clock)
        node.clock += work
        messages = net.collect(node.node_id, node.clock)
        outcome = node.select(candidate, messages)
        if self._sanitize:
            check_message_conservation(
                net, context=f"after step of node {node.node_id}"
            )
        if outcome.broadcast is not None:
            with self.tracer.span(
                "phase.broadcast", vt=lambda: node.clock, node=node.node_id
            ):
                order, length = tour_payload(outcome.broadcast)
                self._disseminate(node, length, order)
        if outcome.done_reason in ("optimum", "notified"):
            # Propagate the stop signal (hop-by-hop flooding).
            order, length = tour_payload(node.s_best)
            net.broadcast(
                node.node_id, MessageKind.OPTIMUM_FOUND, length, order,
                sent_at=node.clock,
            )

    def _alive_peers(self, sender: int) -> list:
        return [
            n.node_id for n in self.nodes
            if n.node_id != sender and not n.done
            and n.clock >= self._join_at.get(n.node_id, 0.0)
        ]

    def _disseminate(self, node, length: int, order) -> None:
        """Spread an improvement per the configured dissemination mode."""
        if self.dissemination == "broadcast":
            self.network.broadcast(
                node.node_id, MessageKind.TOUR, length, order,
                sent_at=node.clock,
            )
            return
        peers = self._alive_peers(node.node_id)
        if not peers:
            return
        k = min(self.gossip_fanout, len(peers))
        chosen = self._gossip_rng.choice(len(peers), size=k, replace=False)
        targets = [peers[int(i)] for i in chosen]
        self.network.send(
            node.node_id, targets, MessageKind.TOUR, length, order,
            sent_at=node.clock,
        )

    def _collect_result(self) -> SimulationResult:
        nodes = self.nodes
        with_best = [n for n in nodes if n.s_best is not None]
        if not with_best:
            raise RuntimeError(
                "no node produced a tour (run cancelled before the first "
                "selection step?)"
            )
        best_node = min(
            with_best, key=lambda n: (n.s_best.length, n.node_id),
        )
        if self._sanitize:
            check_tour(best_node.s_best, "simulation best tour")
            check_message_conservation(self.network, context="end of run")
        if self.tracer.enabled:
            # Per-node run summary into the metrics registry: final
            # clocks (the accounting anchor for time-in-phase tables)
            # and cumulative engine telemetry.
            metrics = self.tracer.metrics
            for n in nodes:
                metrics.set_gauge("node.clock_vsec", n.clock, node=n.node_id)
                n.op_stats.emit(metrics, node=n.node_id)
            metrics.inc("net.broadcasts", self.network.stats.broadcasts)
            metrics.inc("net.messages", self.network.stats.messages)
        # Merge improvement events into the global anytime curve.
        merged: list[tuple[float, int]] = []
        for n in nodes:
            merged.extend(n.events.improvements())
        merged.sort()
        trace: list[tuple[float, int]] = []
        running = None
        found_at = 0.0
        for vsec, length in merged:
            if running is None or length < running:
                running = length
                trace.append((vsec, length))
                if length == best_node.s_best.length:
                    found_at = vsec
        return SimulationResult(
            best_tour=best_node.s_best.copy(),
            best_node=best_node.node_id,
            best_found_at=found_at,
            reasons={n.node_id: n.done_reason for n in nodes},
            clocks={n.node_id: n.clock for n in nodes},
            event_logs={n.node_id: n.events for n in nodes},
            network_stats=self.network.stats,
            global_trace=trace,
            op_stats={n.node_id: n.op_stats.copy() for n in nodes},
        )


def run_simulation(
    instance,
    budget_vsec_per_node: float,
    n_nodes: int = 8,
    node_config: NodeConfig | None = None,
    topology: str | dict = "hypercube",
    latency: LatencyModel | None = None,
    churn=None,
    dissemination: str = "broadcast",
    gossip_fanout: int = 3,
    rng=None,
) -> SimulationResult:
    """One-shot distributed run (the paper's default setup is 8 nodes in a
    hypercube with the Random-walk kick)."""
    sim = Simulator(
        instance,
        n_nodes=n_nodes,
        node_config=node_config,
        topology=topology,
        latency=latency,
        churn=churn,
        dissemination=dissemination,
        gossip_fanout=gossip_fanout,
        rng=rng,
    )
    return sim.run(budget_vsec_per_node)
