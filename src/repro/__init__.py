"""repro: Distributed Chained Lin-Kernighan for the TSP.

Reproduction of Fischer & Merz, "A Distributed Chained Lin-Kernighan
Algorithm for TSP Problems" (IPDPS 2005).  See README.md for a tour of the
API and DESIGN.md for the system inventory.

Quickstart::

    from repro import generators, solve
    inst = generators.clustered(200, rng=0)
    result = solve(inst, budget_vsec_per_node=5.0, n_nodes=8, rng=0)
    print(result.best_length, result.reasons)
"""

from .core import NodeConfig, replicate, solve
from .localsearch import ChainedLK, LKConfig, chained_lk, lin_kernighan
from .tsp import TSPInstance, Tour, generators, registry, tsplib

__version__ = "1.0.0"

__all__ = [
    "solve",
    "replicate",
    "NodeConfig",
    "chained_lk",
    "ChainedLK",
    "lin_kernighan",
    "LKConfig",
    "TSPInstance",
    "Tour",
    "generators",
    "registry",
    "tsplib",
    "__version__",
]
