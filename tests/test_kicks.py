"""Tests for the double-bridge kick strategies."""

import numpy as np
import pytest

from repro.localsearch.kicks import (
    KICK_STRATEGIES,
    apply_double_bridge,
    close_kick,
    geometric_kick,
    get_kick,
    random_kick,
    random_walk_kick,
)
from repro.tsp.tour import random_tour


ALL_KICKS = list(KICK_STRATEGIES.values())


class TestStrategies:
    @pytest.mark.parametrize("kick", ALL_KICKS)
    def test_returns_four_sorted_distinct_positions(self, kick, small_instance, rng):
        t = random_tour(small_instance, rng)
        for _ in range(10):
            pos = kick(t, rng)
            assert len(pos) == 4
            assert all(0 <= p < t.n for p in pos)
            assert list(pos) == sorted(set(int(p) for p in pos))

    def test_get_kick_lookup(self):
        assert get_kick("random") is random_kick
        assert get_kick("geometric") is geometric_kick
        assert get_kick("close") is close_kick
        assert get_kick("random_walk") is random_walk_kick

    def test_get_kick_unknown(self):
        with pytest.raises(KeyError, match="choices"):
            get_kick("mega")

    def test_geometric_kick_is_local(self, clustered_instance, rng):
        # Geometric cuts should span a smaller coordinate range than random.
        t = random_tour(clustered_instance, rng)
        def spread(kick):
            widths = []
            for _ in range(30):
                pos = kick(t, rng)
                cities = t.order[np.asarray(pos)]
                pts = clustered_instance.coords[cities]
                widths.append(np.ptp(pts, axis=0).sum())
            return np.median(widths)
        assert spread(geometric_kick) < spread(random_kick)

    def test_deterministic_given_rng(self, small_instance):
        t = random_tour(small_instance, np.random.default_rng(0))
        a = random_kick(t, np.random.default_rng(5))
        b = random_kick(t, np.random.default_rng(5))
        assert np.array_equal(a, b)


class TestApplyDoubleBridge:
    def test_valid_and_incremental_length(self, small_instance, rng):
        t = random_tour(small_instance, rng)
        for _ in range(20):
            pos = random_kick(t, rng)
            touched = apply_double_bridge(t, pos)
            assert t.is_valid()
            assert t.length == t.recompute_length()
            assert len(touched) == 8

    def test_changes_exactly_four_edges(self, small_instance, rng):
        t = random_tour(small_instance, rng)
        before = t.edge_set()
        pos = random_kick(t, rng)
        apply_double_bridge(t, pos)
        diff = before ^ t.edge_set()
        assert len(diff) == 8  # 4 removed + 4 added

    def test_touched_cities_are_changed_edge_endpoints(self, small_instance, rng):
        t = random_tour(small_instance, rng)
        before = t.edge_set()
        touched = apply_double_bridge(t, random_kick(t, rng))
        changed = before ^ t.edge_set()
        endpoints = {c for e in changed for c in e}
        assert endpoints <= set(touched)

    def test_rejects_bad_positions(self, small_instance, rng):
        t = random_tour(small_instance, rng)
        with pytest.raises(ValueError, match="sorted"):
            apply_double_bridge(t, np.array([3, 3, 5, 9]))
        with pytest.raises(ValueError, match="sorted"):
            apply_double_bridge(t, np.array([5, 3, 9, 12]))

    def test_not_reversible_by_single_2opt(self, small_instance, rng):
        # DBM is a 4-exchange: the edge difference is 4, while a 2-opt
        # changes exactly 2 edges.
        t = random_tour(small_instance, rng)
        before = t.edge_set()
        apply_double_bridge(t, random_kick(t, rng))
        assert len(before - t.edge_set()) == 4


class TestDistinctPositionSampling:
    """_distinct_positions must *sample* with its rng, not truncate."""

    def test_samples_instead_of_truncating(self, small_instance):
        from repro.localsearch.kicks import _distinct_positions

        t = random_tour(small_instance, np.random.default_rng(0))
        cities = [int(c) for c in t.order[:10]]  # 10 distinct positions
        all_pos = sorted(int(t.position[c]) for c in cities)
        seen = set()
        for seed in range(40):
            pos = _distinct_positions(t, cities, np.random.default_rng(seed))
            assert len(pos) == 4
            assert list(pos) == sorted(pos)
            assert set(int(p) for p in pos) <= set(all_pos)
            seen.add(tuple(int(p) for p in pos))
        # The old bug kept the four lowest positions every time; sampling
        # must produce many different subsets across seeds.
        assert len(seen) > 1
        assert seen != {tuple(all_pos[:4])}

    def test_deterministic_given_rng_state(self, small_instance):
        from repro.localsearch.kicks import _distinct_positions

        t = random_tour(small_instance, np.random.default_rng(0))
        cities = [int(c) for c in t.order[:8]]
        a = _distinct_positions(t, cities, np.random.default_rng(3))
        b = _distinct_positions(t, cities, np.random.default_rng(3))
        assert np.array_equal(a, b)

    def test_returns_none_under_four_distinct(self, small_instance, rng):
        from repro.localsearch.kicks import _distinct_positions

        t = random_tour(small_instance, np.random.default_rng(0))
        cities = [int(t.order[0])] * 5 + [int(t.order[1]), int(t.order[2])]
        assert _distinct_positions(t, cities, rng) is None


class TestFallbackAccounting:
    """Structured kicks degrading to random must be visible in OpStats."""

    def test_close_kick_fallback_counted_on_tiny_instance(self):
        from repro.localsearch.engine import OpStats
        from repro.tsp import generators

        # n=6: the close strategy's candidate subset (n-1 = 5 cities) can
        # never supply the six nearest it needs, so it must fall back.
        inst = generators.uniform(6, rng=1, name="tiny6")
        t = random_tour(inst, np.random.default_rng(2))
        stats = OpStats()
        pos = close_kick(t, np.random.default_rng(3), stats=stats)
        assert stats.kick_fallbacks == 1
        assert len(pos) == 4  # the random fallback still yields a valid kick

    def test_fallback_without_stats_sink_is_silent(self):
        from repro.tsp import generators

        inst = generators.uniform(6, rng=1, name="tiny6b")
        t = random_tour(inst, np.random.default_rng(2))
        pos = close_kick(t, np.random.default_rng(3))
        assert len(pos) == 4

    def test_no_fallback_recorded_on_normal_instance(self, small_instance):
        from repro.localsearch.engine import OpStats

        t = random_tour(small_instance, np.random.default_rng(0))
        stats = OpStats()
        for seed in range(10):
            for kick in (geometric_kick, close_kick, random_walk_kick):
                kick(t, np.random.default_rng(seed), stats=stats)
        assert stats.kick_fallbacks == 0

    def test_fallbacks_surface_in_op_stats_table(self):
        from repro.analysis.reporting import op_stats_table
        from repro.localsearch.engine import OpStats

        table = op_stats_table({"n0": OpStats(kick_fallbacks=7)})
        assert "kickfb" in table
        assert "7" in table
