"""Module-level dataflow tier: await-epoch CFG, symbol index, taint.

The per-statement rules in :mod:`tools.reprolint.rules` see one AST node
at a time; the concurrency invariants of the asyncio service layer live
*between* statements — a read of shared state before an ``await`` and a
write after it, a task whose handle is dropped, a wall-clock value that
flows three assignments later into a persisted record.  This module
provides the three analyses those rules (RPL007–RPL011) are built on:

* :class:`FunctionFlow` — a linearized walk of one function body in
  approximate execution order, annotating every attribute read/write and
  call with its **await epoch** (number of await points crossed before
  it), lock depth (``async with <lock>:`` nesting) and innermost-loop
  id.  Two accesses in different epochs have an await between them: any
  other coroutine may have run.  The walk is linear (branches of an
  ``if`` share the parent's epoch counter) — a deliberate approximation
  that errs on flagging, documented in docs/CHECKS.md.
* :class:`ProjectIndex` — a lightweight project-wide symbol/attribute
  index: every class's ``__init__``-assigned attributes classified as
  container / lock / task / other, the class each attribute is an
  instance of (``self.queue = WorkQueue(...)``), and the set of frozen
  dataclasses (wire types).  Built once per lint run over every parsed
  module, so a rule inspecting ``service.py`` knows that
  ``self.queue._heap`` reaches the list inside ``queue.py``'s
  ``WorkQueue``.
* :class:`TaintEnv` — intra-function determinism taint: values
  originating from wall-clock reads, ``os.urandom``/``id()``/``uuid``,
  or unordered ``set`` iteration, propagated through assignments and
  expressions until they hit a persistence sink.

Nested ``def``/``lambda`` bodies are skipped by the flow walk (they
execute at an unknown time) and analyzed as functions of their own.

The ``# reprolint: atomic-section`` annotation marks a reviewed
read-modify-write that spans an await on purpose; it is parsed here
(:attr:`ModuleInfo.atomic_lines`) and honoured by RPL008.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "ModuleInfo",
    "ProjectIndex",
    "ClassInfo",
    "FunctionFlow",
    "FlowEvent",
    "TaintEnv",
    "dotted_name",
    "import_map",
    "iter_functions",
]

_ATOMIC_RE = re.compile(r"#\s*reprolint:\s*atomic-section\b")

#: Method names that mutate their receiver in place.  A call
#: ``self.x.append(v)`` is recorded as a *write* of ``self.x`` (and the
#: incidental read of the receiver is suppressed — the mutation is one
#: atomic access, not a stale read followed by a write).
MUTATORS = frozenset(
    {
        "append", "appendleft", "extend", "insert", "pop", "popleft",
        "popitem", "remove", "discard", "clear", "add", "update",
        "setdefault", "push", "move_to_end", "put_nowait", "sort",
        "reverse",
    }
)

#: Container constructors / annotation heads marking an attribute as
#: shared mutable state for RPL008.
_CONTAINER_HEADS = frozenset(
    {
        "dict", "list", "set", "Dict", "List", "Set", "OrderedDict",
        "defaultdict", "deque", "Counter", "MutableMapping",
    }
)

_LOCK_HEADS = frozenset({"Lock", "RLock", "Semaphore", "BoundedSemaphore",
                         "Condition"})


# ---------------------------------------------------------------------------
# shared AST helpers


def dotted_name(node: ast.AST,
                aliases: Optional[Dict[str, str]] = None) -> Optional[str]:
    """Resolve ``a.b.c`` chains to a dotted string, through import
    aliases when a map is given (``np`` -> ``numpy``)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    head = node.id
    if aliases is not None:
        head = aliases.get(head, head)
    parts.append(head)
    return ".".join(reversed(parts))


def import_map(tree: ast.Module) -> Dict[str, str]:
    """Local alias -> full dotted path, from the module's imports."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for a in node.names:
                aliases[a.asname or a.name.split(".")[0]] = (
                    a.name if a.asname else a.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for a in node.names:
                aliases[a.asname or a.name] = f"{node.module}.{a.name}"
        elif isinstance(node, ast.ImportFrom) and node.level:
            # Relative import: keep the tail so `from ..analysis.runio
            # import run_to_json` still resolves to `...runio.run_to_json`.
            mod = node.module or ""
            for a in node.names:
                aliases[a.asname or a.name] = (
                    f"{mod}.{a.name}" if mod else a.name
                )
    aliases.setdefault("np", "numpy")
    return aliases


def iter_functions(
    tree: ast.Module,
) -> Iterator[Tuple[ast.AST, Optional[ast.ClassDef]]]:
    """Yield every function/coroutine with its enclosing class (if any),
    including nested ones — each is analyzed independently."""

    def walk(node: ast.AST, cls: Optional[ast.ClassDef]) -> Iterator:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                yield from walk(child, child)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield child, cls
                yield from walk(child, None)
            else:
                yield from walk(child, cls)

    yield from walk(tree, None)


# ---------------------------------------------------------------------------
# module wrapper


@dataclass
class ModuleInfo:
    """One parsed file plus the derived per-module facts rules share."""

    path: str  # posix path relative to the project root
    tree: ast.Module
    source: str
    aliases: Dict[str, str] = field(default_factory=dict)
    #: Lines carrying a ``# reprolint: atomic-section`` annotation.
    atomic_lines: Set[int] = field(default_factory=set)

    @classmethod
    def build(cls, path: str, tree: ast.Module, source: str) -> "ModuleInfo":
        atomic = {
            lineno
            for lineno, text in enumerate(source.splitlines(), start=1)
            if _ATOMIC_RE.search(text)
        }
        return cls(path=path, tree=tree, source=source,
                   aliases=import_map(tree), atomic_lines=atomic)


# ---------------------------------------------------------------------------
# project-wide symbol/attribute index


@dataclass
class ClassInfo:
    """What the index knows about one class."""

    name: str
    module: str
    frozen_dataclass: bool = False
    #: attr -> "container" | "lock" | "task" | "other"
    attr_kinds: Dict[str, str] = field(default_factory=dict)
    #: attr -> class name it is constructed from (``self.q = WorkQueue()``)
    attr_class: Dict[str, str] = field(default_factory=dict)


def _annotation_head(node: ast.AST) -> Optional[str]:
    """Leftmost name of an annotation (``Dict[str, int]`` -> ``Dict``)."""
    if isinstance(node, ast.Subscript):
        return _annotation_head(node.value)
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            return _annotation_head(ast.parse(node.value, mode="eval").body)
        except SyntaxError:
            return None
    return None


def _value_kind(value: ast.AST) -> Tuple[str, Optional[str]]:
    """Classify an assigned value: (kind, constructed-class-name)."""
    if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.DictComp,
                          ast.ListComp, ast.SetComp)):
        return "container", None
    if isinstance(value, ast.Call):
        head = None
        if isinstance(value.func, ast.Name):
            head = value.func.id
        elif isinstance(value.func, ast.Attribute):
            head = value.func.attr
        if head in _CONTAINER_HEADS:
            return "container", None
        if head in _LOCK_HEADS:
            return "lock", None
        if head in ("create_task", "ensure_future"):
            return "task", None
        if head and head[0].isupper():
            return "other", head
    return "other", None


class ProjectIndex:
    """Project-wide class/attribute facts, built once per lint run."""

    def __init__(self) -> None:
        self.classes: Dict[str, ClassInfo] = {}

    @classmethod
    def build(cls, modules: Iterable[ModuleInfo]) -> "ProjectIndex":
        index = cls()
        for module in modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef):
                    index._index_class(node, module)
        return index

    def _index_class(self, node: ast.ClassDef, module: ModuleInfo) -> None:
        info = self.classes.setdefault(
            node.name, ClassInfo(name=node.name, module=module.path))
        for deco in node.decorator_list:
            target = deco.func if isinstance(deco, ast.Call) else deco
            name = getattr(target, "id", None) or getattr(target, "attr", None)
            if name == "dataclass" and isinstance(deco, ast.Call):
                for kw in deco.keywords:
                    if (kw.arg == "frozen"
                            and isinstance(kw.value, ast.Constant)
                            and kw.value.value is True):
                        info.frozen_dataclass = True
        for stmt in node.body:
            # Class-level annotations: ``jobs: Dict[str, JobRecord]``.
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name):
                head = _annotation_head(stmt.annotation)
                if head in _CONTAINER_HEADS:
                    info.attr_kinds.setdefault(stmt.target.id, "container")
        for fn in node.body:
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for sub in ast.walk(fn):
                if isinstance(sub, ast.AnnAssign):
                    target, value = sub.target, sub.value
                elif isinstance(sub, ast.Assign) and len(sub.targets) == 1:
                    target, value = sub.targets[0], sub.value
                else:
                    continue
                if not (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    continue
                attr = target.attr
                if isinstance(sub, ast.AnnAssign):
                    head = _annotation_head(sub.annotation)
                    if head in _CONTAINER_HEADS:
                        info.attr_kinds[attr] = "container"
                        continue
                    if head == "Task":
                        info.attr_kinds[attr] = "task"
                        continue
                if value is None:
                    continue
                kind, klass = _value_kind(value)
                if kind != "other":
                    # Never let a later ``self.x = None`` downgrade a
                    # known container/lock/task classification.
                    info.attr_kinds[attr] = kind
                else:
                    info.attr_kinds.setdefault(attr, "other")
                    if klass is not None:
                        info.attr_class[attr] = klass
                if "lock" in attr.lower() or "mutex" in attr.lower():
                    info.attr_kinds[attr] = "lock"

    # -- queries -----------------------------------------------------------

    def wire_type_names(self) -> Set[str]:
        """Frozen dataclasses — the project's value/wire types."""
        return {
            name for name, info in self.classes.items()
            if info.frozen_dataclass
        }

    def shared_state(self, class_name: Optional[str],
                     dotted: str) -> bool:
        """Is ``self.<...>`` (``dotted``) shared mutable container state,
        resolved through the attribute index of ``class_name``?

        Handles one level of indirection: ``self._tasks`` via the class's
        own attrs, and ``self.queue._heap`` via the indexed class of
        ``self.queue``.
        """
        parts = dotted.split(".")
        if len(parts) < 2 or parts[0] != "self" or class_name is None:
            return False
        info = self.classes.get(class_name)
        if info is None:
            return False
        if len(parts) == 2:
            return info.attr_kinds.get(parts[1]) == "container"
        inner = self.classes.get(info.attr_class.get(parts[1], ""))
        if inner is not None and len(parts) == 3:
            return inner.attr_kinds.get(parts[2]) == "container"
        return False

    def is_lock(self, class_name: Optional[str], dotted: str) -> bool:
        parts = dotted.split(".")
        if len(parts) == 2 and parts[0] == "self" and class_name:
            info = self.classes.get(class_name)
            if info and info.attr_kinds.get(parts[1]) == "lock":
                return True
        return "lock" in parts[-1].lower() or "mutex" in parts[-1].lower()

    def is_task_attr(self, class_name: Optional[str], dotted: str) -> bool:
        parts = dotted.split(".")
        if len(parts) == 2 and parts[0] == "self" and class_name:
            info = self.classes.get(class_name)
            return bool(info and info.attr_kinds.get(parts[1]) == "task")
        return False


# ---------------------------------------------------------------------------
# execution-order flow walk


@dataclass
class FlowEvent:
    """One access in the linearized walk of a function body.

    ``kind`` is ``read`` / ``write`` / ``call`` / ``await`` /
    ``await_name`` (an await whose operand is a plain name or attribute —
    i.e. awaiting a task handle, directly or through
    ``wait_for``/``shield``/``gather``).
    """

    kind: str
    name: Optional[str]
    node: ast.AST
    epoch: int
    lock_depth: int
    loop_id: Optional[int]
    position: int


class FunctionFlow:
    """Linearized await-epoch walk of one (async) function body."""

    def __init__(self, fn, module: ModuleInfo,
                 index: Optional[ProjectIndex] = None,
                 class_name: Optional[str] = None):
        self.fn = fn
        self.module = module
        self.index = index
        self.class_name = class_name
        self.events: List[FlowEvent] = []
        #: loop_id -> True when the loop body crosses an await.
        self.loop_awaits: Dict[int, bool] = {}
        self._epoch = 0
        self._lock_depth = 0
        self._loop_stack: List[int] = []
        self._next_loop = 0
        self._pos = 0
        self._visit_stmts(fn.body)

    # -- event emission ----------------------------------------------------

    def _emit(self, kind: str, name: Optional[str], node: ast.AST) -> None:
        self._pos += 1
        self.events.append(FlowEvent(
            kind=kind, name=name, node=node, epoch=self._epoch,
            lock_depth=self._lock_depth,
            loop_id=self._loop_stack[-1] if self._loop_stack else None,
            position=self._pos,
        ))

    def _bump_epoch(self, node: ast.AST) -> None:
        self._emit("await", None, node)
        self._epoch += 1
        for loop_id in self._loop_stack:
            self.loop_awaits[loop_id] = True

    # -- statements --------------------------------------------------------

    def _visit_stmts(self, stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            self._visit_stmt(stmt)

    def _visit_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return  # nested scope: executes at an unknown time
        if isinstance(stmt, ast.Assign):
            self._visit_expr(stmt.value)
            for target in stmt.targets:
                self._visit_target(target)
        elif isinstance(stmt, ast.AugAssign):
            self._visit_expr(stmt.value)
            self._visit_expr(stmt.target, force_load=True)
            self._visit_target(stmt.target)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._visit_expr(stmt.value)
                self._visit_target(stmt.target)
        elif isinstance(stmt, ast.Expr):
            self._visit_expr(stmt.value)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._visit_expr(stmt.value)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self._visit_target(target)
        elif isinstance(stmt, ast.If):
            self._visit_expr(stmt.test)
            self._visit_stmts(stmt.body)
            self._visit_stmts(stmt.orelse)
        elif isinstance(stmt, (ast.While,)):
            loop_id = self._enter_loop()
            self._visit_expr(stmt.test)
            self._visit_stmts(stmt.body)
            self._exit_loop()
            self._visit_stmts(stmt.orelse)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._visit_expr(stmt.iter)
            if isinstance(stmt, ast.AsyncFor):
                self._bump_epoch(stmt)
            loop_id = self._enter_loop()
            self._visit_target(stmt.target)
            self._visit_stmts(stmt.body)
            self._exit_loop()
            self._visit_stmts(stmt.orelse)
            del loop_id
        elif isinstance(stmt, ast.Try):
            self._visit_stmts(stmt.body)
            for handler in stmt.handlers:
                self._visit_stmts(handler.body)
            self._visit_stmts(stmt.orelse)
            self._visit_stmts(stmt.finalbody)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            is_lock = False
            for item in stmt.items:
                self._visit_expr(item.context_expr)
                name = dotted_name(item.context_expr)
                if name is None and isinstance(item.context_expr, ast.Call):
                    name = dotted_name(item.context_expr.func)
                if name is not None and self.index is not None and \
                        self.index.is_lock(self.class_name, name):
                    is_lock = True
            if isinstance(stmt, ast.AsyncWith):
                self._bump_epoch(stmt)  # __aenter__ awaits
            if is_lock:
                self._lock_depth += 1
            self._visit_stmts(stmt.body)
            if is_lock:
                self._lock_depth -= 1
            if isinstance(stmt, ast.AsyncWith):
                self._bump_epoch(stmt)  # __aexit__ awaits
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for sub in ast.iter_child_nodes(stmt):
                if isinstance(sub, ast.expr):
                    self._visit_expr(sub)
        elif isinstance(stmt, (ast.Global, ast.Nonlocal, ast.Pass,
                               ast.Break, ast.Continue, ast.Import,
                               ast.ImportFrom)):
            pass
        else:  # pragma: no cover - future statement kinds degrade softly
            for sub in ast.iter_child_nodes(stmt):
                if isinstance(sub, ast.expr):
                    self._visit_expr(sub)

    def _enter_loop(self) -> int:
        loop_id = self._next_loop
        self._next_loop += 1
        self._loop_stack.append(loop_id)
        self.loop_awaits.setdefault(loop_id, False)
        return loop_id

    def _exit_loop(self) -> None:
        self._loop_stack.pop()

    # -- targets and expressions ------------------------------------------

    def _visit_target(self, target: ast.expr) -> None:
        """A store/delete target: emit a write for the mutated binding."""
        if isinstance(target, ast.Name):
            self._emit("write", target.id, target)
        elif isinstance(target, ast.Attribute):
            name = dotted_name(target)
            if name is not None:
                self._emit("write", name, target)
            else:
                self._visit_expr(target.value)
        elif isinstance(target, ast.Subscript):
            # ``self.x[k] = v`` mutates self.x: a write, with the
            # receiver's incidental read suppressed (one atomic access).
            name = dotted_name(target.value)
            self._visit_expr(target.slice)
            if name is not None:
                self._emit("write", name, target)
            else:
                self._visit_expr(target.value)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._visit_target(elt)
        elif isinstance(target, ast.Starred):
            self._visit_target(target.value)

    def _visit_expr(self, node: ast.expr, force_load: bool = False) -> None:
        if isinstance(node, ast.Await):
            self._visit_expr(node.value)
            self._emit_await_name(node.value)
            self._bump_epoch(node)
            return
        if isinstance(node, ast.Lambda):
            return  # deferred execution
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                             ast.GeneratorExp)):
            # Comprehensions run inline: walk iterables and element exprs.
            for gen in node.generators:
                self._visit_expr(gen.iter)
                for cond in gen.ifs:
                    self._visit_expr(cond)
            if isinstance(node, ast.DictComp):
                self._visit_expr(node.key)
                self._visit_expr(node.value)
            else:
                self._visit_expr(node.elt)
            return
        if isinstance(node, ast.Call):
            func_name = dotted_name(node.func, self.module.aliases)
            raw_name = dotted_name(node.func)
            self._pos += 1
            self.events.append(FlowEvent(
                kind="call", name=func_name or raw_name, node=node,
                epoch=self._epoch, lock_depth=self._lock_depth,
                loop_id=self._loop_stack[-1] if self._loop_stack else None,
                position=self._pos,
            ))
            mutator = (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in MUTATORS
            )
            if mutator:
                recv = dotted_name(node.func.value)
                if recv is not None:
                    self._emit("write", recv, node)
                else:
                    self._visit_expr(node.func.value)
            else:
                self._visit_expr(node.func)
            for arg in node.args:
                self._visit_expr(arg)
            for kw in node.keywords:
                self._visit_expr(kw.value)
            return
        if isinstance(node, ast.Attribute):
            name = dotted_name(node)
            if name is not None:
                self._emit("read", name, node)
                # Also surface the base object read (``self.q`` for
                # ``self.q.depth``) so prefix queries need no parsing.
                return
            self._visit_expr(node.value)
            return
        if isinstance(node, ast.Name):
            self._emit("read", node.id, node)
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._visit_expr(child)

    def _emit_await_name(self, value: ast.expr) -> None:
        """Record ``await <task-handle>`` shapes: a bare name/attr, or a
        handle passed through ``wait_for``/``shield``/``wait``/``gather``."""
        if isinstance(value, (ast.Name, ast.Attribute)):
            name = dotted_name(value)
            if name is not None:
                self._emit("await_name", name, value)
            return
        if isinstance(value, ast.Call):
            func = dotted_name(value.func) or ""
            tail = func.rsplit(".", 1)[-1]
            if tail in ("wait_for", "shield", "wait", "gather"):
                for arg in value.args:
                    if isinstance(arg, ast.Starred):
                        arg = arg.value
                    if isinstance(arg, (ast.Name, ast.Attribute)):
                        name = dotted_name(arg)
                        if name is not None:
                            self._emit("await_name", name, arg)

    # -- queries -----------------------------------------------------------

    def attribute_events(self, prefix: str = "self.") -> List[FlowEvent]:
        return [
            ev for ev in self.events
            if ev.kind in ("read", "write") and ev.name is not None
            and ev.name.startswith(prefix)
        ]

    def await_count(self) -> int:
        return self._epoch


class TaintEnv:
    """Intra-function determinism-taint tracking (RPL010).

    Sources are wall-clock reads, OS randomness, ``id()``, ``uuid``
    generation and iteration over unordered ``set`` values; sanitizers
    (``sorted``/``len``/``min``/``max``) clear taint; everything else
    propagates through expressions and simple assignments.
    """

    SOURCES = frozenset(
        {
            "time.time", "time.time_ns", "time.monotonic",
            "time.monotonic_ns", "time.perf_counter",
            "time.perf_counter_ns", "time.process_time",
            "time.process_time_ns", "datetime.datetime.now",
            "datetime.datetime.utcnow", "datetime.datetime.today",
            "os.urandom", "os.getpid", "uuid.uuid1", "uuid.uuid4",
            "secrets.token_bytes", "secrets.token_hex", "id",
        }
    )
    SANITIZERS = frozenset({"sorted", "len", "min", "max", "repr"})

    def __init__(self, aliases: Dict[str, str]):
        self.aliases = aliases
        self.tainted: Set[str] = set()

    # -- expression classification ----------------------------------------

    def _call_name(self, node: ast.Call) -> str:
        return dotted_name(node.func, self.aliases) or ""

    def is_unordered(self, node: ast.expr) -> bool:
        """Set displays/comprehensions and ``set()``/``frozenset()``
        calls: iteration order is id-dependent across processes."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            tail = self._call_name(node).rsplit(".", 1)[-1]
            if tail in ("set", "frozenset"):
                return True
            if tail in ("list", "tuple", "iter", "reversed") and node.args:
                return self.is_unordered(node.args[0])
        if isinstance(node, ast.Name):
            return node.id in self.tainted
        return False

    def expr_tainted(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Call):
            name = self._call_name(node)
            tail = name.rsplit(".", 1)[-1]
            if name in self.SOURCES or tail in ("urandom", "uuid1", "uuid4"):
                return True
            if tail in self.SANITIZERS:
                return False
            if tail in ("list", "tuple") and node.args and \
                    self.is_unordered(node.args[0]):
                return True
            return any(self.expr_tainted(a) for a in node.args) or any(
                self.expr_tainted(kw.value) for kw in node.keywords)
        if isinstance(node, ast.Name):
            return node.id in self.tainted
        if isinstance(node, ast.Attribute):
            base = dotted_name(node)
            if base is not None:
                return base.split(".", 1)[0] in self.tainted
            return self.expr_tainted(node.value)
        if isinstance(node, ast.Await):
            return self.expr_tainted(node.value)
        if isinstance(node, (ast.Lambda, ast.Constant)):
            return False
        return any(
            self.expr_tainted(child)
            for child in ast.iter_child_nodes(node)
            if isinstance(child, ast.expr)
        )

    # -- statement-level propagation --------------------------------------

    def assign(self, targets: Iterable[ast.expr], tainted: bool) -> None:
        for target in targets:
            if isinstance(target, ast.Name):
                if tainted:
                    self.tainted.add(target.id)
                else:
                    self.tainted.discard(target.id)
            elif isinstance(target, (ast.Tuple, ast.List)):
                self.assign(target.elts, tainted)
            elif isinstance(target, ast.Starred):
                self.assign([target.value], tainted)
