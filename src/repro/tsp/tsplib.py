"""TSPLIB file format support.

Reads and writes the subset of Reinelt's TSPLIB-95 format needed for the
paper's testbed: ``TYPE: TSP``, node-coordinate sections for all planar
metrics plus ``GEO``, and ``EXPLICIT`` matrices in the common
``EDGE_WEIGHT_FORMAT`` layouts.  Also reads/writes ``.tour`` files.

The parser is deliberately forgiving about whitespace and key/value colons,
matching real files in the wild.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Optional, Union

import numpy as np

from .instance import TSPInstance
from .tour import Tour

__all__ = ["load", "loads", "dump", "dumps", "load_tour", "dump_tour"]

_SUPPORTED_WEIGHT_FORMATS = (
    "FULL_MATRIX",
    "UPPER_ROW",
    "LOWER_ROW",
    "UPPER_DIAG_ROW",
    "LOWER_DIAG_ROW",
    "UPPER_COL",
    "LOWER_COL",
    "UPPER_DIAG_COL",
    "LOWER_DIAG_COL",
)


def _tokenize_sections(text: str):
    """Split a TSPLIB file into (spec dict, {section name: token list})."""
    spec: dict[str, str] = {}
    sections: dict[str, list[str]] = {}
    lines = text.splitlines()
    i = 0
    section_keys = {
        "NODE_COORD_SECTION",
        "EDGE_WEIGHT_SECTION",
        "DISPLAY_DATA_SECTION",
        "TOUR_SECTION",
        "DEPOT_SECTION",
        "FIXED_EDGES_SECTION",
    }
    while i < len(lines):
        line = lines[i].strip()
        i += 1
        if not line or line == "EOF":
            continue
        key = line.split(":", 1)[0].strip().upper()
        if key in section_keys:
            toks: list[str] = []
            while i < len(lines):
                s = lines[i].strip()
                if not s:
                    i += 1
                    continue
                head = s.split(":", 1)[0].strip().upper()
                if s == "EOF" or head in section_keys or _looks_like_spec(s):
                    break
                toks.extend(s.split())
                i += 1
            sections[key] = toks
        elif ":" in line:
            k, v = line.split(":", 1)
            spec[k.strip().upper()] = v.strip()
        else:
            # Bare keyword outside any known section; ignore.
            continue
    return spec, sections


_SPEC_KEYS = {
    "NAME",
    "TYPE",
    "COMMENT",
    "DIMENSION",
    "CAPACITY",
    "EDGE_WEIGHT_TYPE",
    "EDGE_WEIGHT_FORMAT",
    "EDGE_DATA_FORMAT",
    "NODE_COORD_TYPE",
    "DISPLAY_DATA_TYPE",
}


def _looks_like_spec(line: str) -> bool:
    if ":" not in line:
        return False
    return line.split(":", 1)[0].strip().upper() in _SPEC_KEYS


def loads(text: str) -> TSPInstance:
    """Parse a TSPLIB ``.tsp`` document from a string."""
    spec, sections = _tokenize_sections(text)
    ftype = spec.get("TYPE", "TSP").split()[0].upper()
    if ftype not in ("TSP", "STSP"):
        raise ValueError(f"unsupported TSPLIB TYPE: {ftype!r} (only symmetric TSP)")
    name = spec.get("NAME", "unnamed")
    comment = spec.get("COMMENT", "")
    n = int(spec["DIMENSION"])
    ewt = spec.get("EDGE_WEIGHT_TYPE", "EUC_2D").upper()

    if ewt == "EXPLICIT":
        fmt = spec.get("EDGE_WEIGHT_FORMAT", "FULL_MATRIX").upper()
        if fmt not in _SUPPORTED_WEIGHT_FORMATS:
            raise ValueError(f"unsupported EDGE_WEIGHT_FORMAT: {fmt!r}")
        toks = sections.get("EDGE_WEIGHT_SECTION")
        if toks is None:
            raise ValueError("EXPLICIT instance missing EDGE_WEIGHT_SECTION")
        vals = np.array([int(float(t)) for t in toks], dtype=np.int64)
        matrix = _assemble_matrix(vals, n, fmt)
        return TSPInstance(
            coords=None,
            edge_weight_type="EXPLICIT",
            name=name,
            matrix=matrix,
            comment=comment,
        )

    toks = sections.get("NODE_COORD_SECTION")
    if toks is None:
        raise ValueError("coordinate instance missing NODE_COORD_SECTION")
    if len(toks) != 3 * n:
        raise ValueError(
            f"NODE_COORD_SECTION has {len(toks)} tokens, expected {3 * n}"
        )
    rows = np.array(toks, dtype=np.float64).reshape(n, 3)
    # TSPLIB numbers cities 1..n but files exist with arbitrary labels; sort
    # by label to be safe.
    order = np.argsort(rows[:, 0], kind="stable")
    coords = rows[order, 1:3]
    return TSPInstance(
        coords=coords, edge_weight_type=ewt, name=name, comment=comment
    )


def _assemble_matrix(vals: np.ndarray, n: int, fmt: str) -> np.ndarray:
    m = np.zeros((n, n), dtype=np.int64)
    if fmt == "FULL_MATRIX":
        if vals.size != n * n:
            raise ValueError("FULL_MATRIX size mismatch")
        m = vals.reshape(n, n).copy()
    elif fmt in ("UPPER_ROW", "UPPER_DIAG_ROW"):
        diag = fmt == "UPPER_DIAG_ROW"
        expect = n * (n + 1) // 2 if diag else n * (n - 1) // 2
        if vals.size != expect:
            raise ValueError(f"{fmt} size mismatch: {vals.size} != {expect}")
        k = 0
        for i in range(n):
            start = i if diag else i + 1
            for j in range(start, n):
                m[i, j] = vals[k]
                m[j, i] = vals[k]
                k += 1
    elif fmt in ("UPPER_COL", "UPPER_DIAG_COL", "LOWER_COL",
                 "LOWER_DIAG_COL"):
        # Column-major formats are the row-major ones of the transpose:
        # UPPER_COL(m) == LOWER_ROW(m^T) and the matrix is symmetric, so
        # reuse the row assembly with upper/lower swapped.
        swap = {
            "UPPER_COL": "LOWER_ROW",
            "UPPER_DIAG_COL": "LOWER_DIAG_ROW",
            "LOWER_COL": "UPPER_ROW",
            "LOWER_DIAG_COL": "UPPER_DIAG_ROW",
        }
        return _assemble_matrix(vals, n, swap[fmt])
    elif fmt in ("LOWER_ROW", "LOWER_DIAG_ROW"):
        diag = fmt == "LOWER_DIAG_ROW"
        expect = n * (n + 1) // 2 if diag else n * (n - 1) // 2
        if vals.size != expect:
            raise ValueError(f"{fmt} size mismatch: {vals.size} != {expect}")
        k = 0
        for i in range(n):
            end = i + 1 if diag else i
            for j in range(end):
                m[i, j] = vals[k]
                m[j, i] = vals[k]
                k += 1
            if diag:
                # the diagonal entry itself
                m[i, i] = 0
    np.fill_diagonal(m, 0)
    return m


def load(path: Union[str, Path]) -> TSPInstance:
    """Load a TSPLIB ``.tsp`` file."""
    return loads(Path(path).read_text())


def dumps(instance: TSPInstance) -> str:
    """Serialize an instance to TSPLIB format."""
    buf = io.StringIO()
    buf.write(f"NAME : {instance.name}\n")
    buf.write("TYPE : TSP\n")
    if instance.comment:
        buf.write(f"COMMENT : {instance.comment}\n")
    buf.write(f"DIMENSION : {instance.n}\n")
    buf.write(f"EDGE_WEIGHT_TYPE : {instance.edge_weight_type}\n")
    if instance.edge_weight_type == "EXPLICIT":
        buf.write("EDGE_WEIGHT_FORMAT : FULL_MATRIX\n")
        buf.write("EDGE_WEIGHT_SECTION\n")
        for row in instance.matrix:
            buf.write(" ".join(str(int(v)) for v in row) + "\n")
    else:
        buf.write("NODE_COORD_SECTION\n")
        for i, (x, y) in enumerate(instance.coords, start=1):
            buf.write(f"{i} {x:.6f} {y:.6f}\n")
    buf.write("EOF\n")
    return buf.getvalue()


def dump(instance: TSPInstance, path: Union[str, Path]) -> None:
    """Write an instance to a TSPLIB ``.tsp`` file."""
    Path(path).write_text(dumps(instance))


def load_tour(path: Union[str, Path], instance: Optional[TSPInstance] = None):
    """Load a TSPLIB ``.tour`` file.

    Returns a :class:`Tour` when ``instance`` is given, else the raw
    zero-based order array.
    """
    spec, sections = _tokenize_sections(Path(path).read_text())
    toks = sections.get("TOUR_SECTION")
    if toks is None:
        raise ValueError("missing TOUR_SECTION")
    cities = [int(t) for t in toks if int(t) != -1]
    order = np.array(cities, dtype=np.intp) - 1
    if instance is not None:
        return Tour(instance, order)
    return order


def dump_tour(tour: Tour, path: Union[str, Path], name: str = "tour") -> None:
    """Write a tour to a TSPLIB ``.tour`` file (1-based cities)."""
    buf = io.StringIO()
    buf.write(f"NAME : {name}\n")
    buf.write("TYPE : TOUR\n")
    buf.write(f"DIMENSION : {tour.n}\n")
    buf.write("TOUR_SECTION\n")
    for c in tour.order:
        buf.write(f"{int(c) + 1}\n")
    buf.write("-1\nEOF\n")
    Path(path).write_text(buf.getvalue())
