"""Engine microbenchmarks: the substrate costs everything else rests on.

Not a paper table — this measures the repository's own hot paths
(construction, one LK pass, one chained kick, a 1-tree) in wall-clock
time via pytest-benchmark's normal timing machinery, so regressions in
the engine show up even when the virtual-time results stay identical.
"""

import pytest

from repro.bounds import minimum_one_tree
from repro.construct import quick_boruvka
from repro.localsearch import ChainedLK, LinKernighan
from repro.tsp import generators
from repro.utils.work import WorkMeter


@pytest.fixture(scope="module")
def inst():
    instance = generators.uniform(300, rng=77)
    instance.materialize()
    instance.neighbor_lists(8)
    return instance


def test_quick_boruvka_300(benchmark, inst):
    tour = benchmark(lambda: quick_boruvka(inst))
    assert tour.is_valid()


def test_lk_full_pass_300(benchmark, inst):
    engine = LinKernighan(inst)

    def run():
        t = quick_boruvka(inst)
        engine.optimize(t)
        return t

    tour = benchmark(run)
    assert tour.is_valid()


def test_clk_kick_step_300(benchmark, inst):
    solver = ChainedLK(inst, rng=0)
    best = solver.initial_tour()

    def step():
        return solver.step(best, WorkMeter())

    cand = benchmark(step)
    assert cand.is_valid()


def test_one_tree_300(benchmark, inst):
    tree = benchmark(lambda: minimum_one_tree(inst))
    assert tree.degrees.sum() == 2 * inst.n
