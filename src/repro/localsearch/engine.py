"""Shared local-search engine layer.

Every local-search operator in this repository — 2-opt, Or-opt, 3-opt and
the Lin-Kernighan engine — bottoms out in the same three pieces of
machinery, factored out here so they are written (and optimized) once:

* :class:`DistView` — row-cached distance access.  Scalar numpy indexing
  (``int(matrix[i, j])``) is ~3x slower in the hot loops than indexing
  nested Python lists; the view exposes the cached list-of-lists form of
  the distance matrix when it is affordable and falls back to the
  instance's scalar closure otherwise.
* :class:`DontLookQueue` — the don't-look-bits work queue (FIFO deque plus
  a membership bool array) that restricts attention to recently touched
  cities.
* :class:`OpStats` — per-call operation counters (candidate scans, flips,
  reversal swaps, queue wakeups) that the benchmarks and the analysis
  layer aggregate into per-operator / per-node telemetry.

The module also hosts the operator registry: every operator registers
itself under a short name (``two_opt``, ``or_opt``, ``three_opt``,
``lk``) with a uniform keyword interface, so higher layers (Chained LK
polish phases, the multilevel and LKH-style baselines) can run
config-driven operator pipelines via :func:`get_operator` /
:func:`run_pipeline`.
"""

from __future__ import annotations

import os
from collections import deque
from typing import Callable, Iterable, Optional

import numpy as np

__all__ = [
    "DistView",
    "DontLookQueue",
    "OpStats",
    "KERNELS",
    "resolve_kernel",
    "register_operator",
    "get_operator",
    "operator_names",
    "run_pipeline",
]

#: The engine's kernel tiers, slowest to fastest reference order:
#: ``scalar`` forces the pre-engine scalar scan loops (the reference
#: implementation the benches compare against), ``row`` uses the
#: row-cached nested-list fast path (the default), ``vector`` dispatches
#: to the NumPy batch kernels in :mod:`repro.localsearch.kernels`.
#: All three tiers select bit-identical move sequences.
KERNELS = ("scalar", "row", "vector")


def resolve_kernel(kernel: Optional[str] = None) -> str:
    """Resolve a kernel name, defaulting via ``REPRO_KERNEL`` then ``row``.

    ``None`` means "not configured": the ``REPRO_KERNEL`` environment
    variable (the CI matrix leg's switch) supplies the default, falling
    back to ``"row"``.  Unknown names raise so a typo cannot silently
    select the wrong tier.
    """
    if kernel is None:
        kernel = os.environ.get("REPRO_KERNEL") or "row"
    if kernel not in KERNELS:
        raise ValueError(
            f"unknown kernel {kernel!r}; known: {KERNELS}"
        )
    return kernel


class DistView:
    """Row-cached distance access with ``instance.dist`` fallback.

    ``view.dist(i, j)`` is the uniform scalar entry point; hot loops that
    scan one city's candidates should grab ``view.row(i)`` once and index
    it directly (``row[j]``), falling back to ``view.dist`` only when
    :attr:`rows` is ``None`` (dense matrix not affordable).  The nested
    lists come from :meth:`TSPInstance.matrix_row_lists` and are shared
    across all views of the same instance.
    """

    __slots__ = ("rows", "matrix", "_fn", "_inst")

    def __init__(self, instance, prefer_rows: bool = True):
        self.rows = instance.matrix_row_lists() if prefer_rows else None
        #: Dense int64 matrix for vectorized gathers, or ``None`` when it
        #: is not affordable (the gathers then fall back to coordinate
        #: math via the instance).
        self.matrix = instance.dense_matrix() if prefer_rows else None
        # The scalar closure is bound even when rows exist so benches can
        # compare both paths on one instance.
        self._fn = instance.dist
        self._inst = instance

    def dist(self, i: int, j: int) -> int:
        """Distance between cities ``i`` and ``j`` (fast path when cached)."""
        rows = self.rows
        if rows is not None:
            return rows[i][j]
        return self._fn(i, j)

    def row(self, i: int):
        """City ``i``'s distance row as a plain list, or ``None``."""
        rows = self.rows
        return rows[i] if rows is not None else None

    def gather(self, i: int, js) -> np.ndarray:
        """Vectorized distances from ``i`` to index array ``js`` (int64).

        Matrix fancy-indexing when the dense matrix exists, coordinate
        math otherwise — always int64 either way, so gain arithmetic in
        the vector kernels cannot overflow int32.
        """
        m = self.matrix
        if m is not None:
            return m[i, js]
        return self._inst.dist_many(i, np.asarray(js, dtype=np.intp))

    def gather_pairs(self, is_, js) -> np.ndarray:
        """Elementwise distances ``d(is_[t], js[t])`` (int64 array)."""
        m = self.matrix
        if m is not None:
            return m[is_, js]
        return self._inst.dist_pairs(is_, js)


class DontLookQueue:
    """Don't-look-bits work queue: FIFO of active cities, no duplicates.

    The classic pattern — a deque of city ids plus an ``in_queue`` bool
    array so each city is queued at most once — previously copy-pasted in
    every operator.  :attr:`wakeups` counts re-activations via
    :meth:`push` (initial seeding via :meth:`fill`/:meth:`seed` is not a
    wakeup), which is the ``queue_wakeups`` telemetry counter.
    """

    __slots__ = ("queue", "in_queue", "wakeups")

    def __init__(self, n: int):
        self.queue: deque = deque()
        self.in_queue = np.zeros(n, dtype=bool)
        self.wakeups = 0

    def fill(self, cities: Iterable[int]) -> None:
        """Activate every city, in the given order (full optimization)."""
        self.queue = deque(int(c) for c in cities)
        self.in_queue[:] = True

    def seed(self, cities: Iterable[int]) -> None:
        """Activate only the given cities (dirty-region re-optimization)."""
        push = self.queue.append
        in_queue = self.in_queue
        for c in cities:
            c = int(c)
            if not in_queue[c]:
                in_queue[c] = True
                push(c)

    def push(self, city: int) -> None:
        """Wake ``city`` (no-op when already queued)."""
        if not self.in_queue[city]:
            self.in_queue[city] = True
            self.queue.append(city)
            self.wakeups += 1

    def pop(self) -> int:
        """Next active city (FIFO); clears its bit."""
        c = self.queue.popleft()
        self.in_queue[c] = False
        return c

    def clear(self) -> None:
        self.queue.clear()
        self.in_queue[:] = False

    def __bool__(self) -> bool:
        return bool(self.queue)

    def __len__(self) -> int:
        return len(self.queue)


class OpStats:
    """Per-call local-search operation counters.

    Cheap enough to be always-on: operators accumulate in local variables
    inside hot loops and flush once per call.  Counters add across calls;
    use :meth:`copy` / subtraction to window a run (``after - before``).

    ``kick_fallbacks`` counts structured kicks (geometric/close/
    random-walk) that silently degraded to a uniform-random kick after
    exhausting their draw attempts — a run configured as ``geometric``
    that behaves as ``random`` on a small or clustered instance is
    visible here rather than indistinguishable from the real strategy.
    """

    __slots__ = (
        "calls",
        "candidate_scans",
        "flips_applied",
        "flips_undone",
        "segment_swaps",
        "queue_wakeups",
        "moves",
        "gain",
        "kick_fallbacks",
    )

    FIELDS = (
        "calls",
        "candidate_scans",
        "flips_applied",
        "flips_undone",
        "segment_swaps",
        "queue_wakeups",
        "moves",
        "gain",
        "kick_fallbacks",
    )

    def __init__(self, **counts):
        for f in self.FIELDS:
            setattr(self, f, int(counts.pop(f, 0)))
        if counts:
            raise TypeError(f"unknown OpStats fields: {sorted(counts)}")

    # -- arithmetic ---------------------------------------------------------

    def merge(self, other: "OpStats") -> "OpStats":
        """Add ``other``'s counters into this object; returns self."""
        for f in self.FIELDS:
            setattr(self, f, getattr(self, f) + getattr(other, f))
        return self

    __iadd__ = merge

    def __sub__(self, other: "OpStats") -> "OpStats":
        return OpStats(
            **{f: getattr(self, f) - getattr(other, f) for f in self.FIELDS}
        )

    def copy(self) -> "OpStats":
        return OpStats(**{f: getattr(self, f) for f in self.FIELDS})

    def __eq__(self, other) -> bool:
        if not isinstance(other, OpStats):
            return NotImplemented
        return all(
            getattr(self, f) == getattr(other, f) for f in self.FIELDS
        )

    # -- serialization ------------------------------------------------------

    def to_json(self) -> dict:
        """Plain dict of counters (runio persistence)."""
        return {f: getattr(self, f) for f in self.FIELDS}

    @classmethod
    def from_json(cls, data: Optional[dict]) -> "OpStats":
        """Rebuild from :meth:`to_json` output; tolerant of missing keys
        and of ``None`` (older run files carry no stats at all)."""
        if not data:
            return cls()
        return cls(**{f: data.get(f, 0) or 0 for f in cls.FIELDS})

    # -- observability bridge -----------------------------------------------

    def emit(self, metrics, **labels) -> None:
        """Flush the counters into an observability metrics registry.

        Each field becomes one ``engine.<field>`` counter series under
        ``labels`` (typically ``node=<id>`` or ``run=<name>``).  Callers
        own the windowing: emit a *delta* (``after - before``) when the
        same OpStats accumulates across calls, or the cumulative object
        exactly once per run (the simulator does the latter per node).
        """
        for f in self.FIELDS:
            value = getattr(self, f)
            if value:
                metrics.inc(f"engine.{f}", value, **labels)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        body = ", ".join(f"{f}={getattr(self, f)}" for f in self.FIELDS)
        return f"OpStats({body})"


# -- operator registry --------------------------------------------------------

#: name -> callable(tour, *, candidates=None, meter=None, stats=None, **kw)
_OPERATORS: dict = {}


def register_operator(name: str) -> Callable:
    """Decorator: register an operator under ``name``.

    Registered callables share the keyword interface
    ``op(tour, *, candidates=None, meter=None, stats=None, **kwargs)``
    and return the (non-negative) total improvement.
    """

    def wrap(fn):
        _OPERATORS[name] = fn
        return fn

    return wrap


def _ensure_registered() -> None:
    # The operator modules register themselves on import; importing them
    # here (lazily, to avoid cycles) guarantees the table is populated.
    from . import lin_kernighan, or_opt, three_opt, two_opt  # noqa: F401


def get_operator(name: str) -> Callable:
    """Look up a registered local-search operator by name."""
    _ensure_registered()
    try:
        return _OPERATORS[name]
    except KeyError:
        raise ValueError(
            f"unknown operator {name!r}; known: {sorted(_OPERATORS)}"
        ) from None


def operator_names() -> tuple:
    """Registered operator names, sorted."""
    _ensure_registered()
    return tuple(sorted(_OPERATORS))


def run_pipeline(tour, names: Iterable[str], candidates=None, meter=None,
                 stats: OpStats | None = None, kernel: str | None = None,
                 **kwargs) -> int:
    """Apply registered operators in sequence; returns the total gain.

    All operators see the same ``candidates`` provider (when given), the
    same meter and the same stats sink — e.g.
    ``run_pipeline(t, ("lk", "or_opt"))`` is the LK + Or-opt polish
    pipeline.  One shared :class:`DistView` is built up front and passed
    to every operator (unless the caller supplies ``view=``), so the
    pipeline resolves the row/matrix caches once instead of per operator.
    ``kernel`` selects the scan-loop tier for the whole pipeline (see
    :data:`KERNELS` / :func:`resolve_kernel`); all tiers produce
    bit-identical tours, stats, and meter charges.  Extra keyword
    arguments are forwarded to every operator.

    When the global tracer is enabled each operator call is wrapped in
    an ``op.<name>`` span carrying a ``kernel`` label (virtual
    timestamps from ``meter`` when one is given) and counted in the
    ``engine.kernel_calls`` metric; disabled tracing costs one attribute
    check per operator.
    """
    from ..obs import get_tracer

    tracer = get_tracer()
    kernel = resolve_kernel(kernel)
    if "view" not in kwargs:
        kwargs["view"] = DistView(tour.instance)
    total = 0
    for name in names:
        op = get_operator(name)
        if tracer.enabled:
            tracer.metrics.inc("engine.kernel_calls", 1, op=name,
                               kernel=kernel)
            with tracer.span(f"op.{name}", vt=meter, kernel=kernel):
                gain = op(tour, candidates=candidates, meter=meter,
                          stats=stats, kernel=kernel, **kwargs)
        else:
            gain = op(tour, candidates=candidates, meter=meter,
                      stats=stats, kernel=kernel, **kwargs)
        total += gain
    return total

