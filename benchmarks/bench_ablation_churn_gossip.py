"""Ablation: dynamic membership (churn) and gossip dissemination.

The paper motivates the P2P design with dynamic environments ("nodes can
join and leave at any time", epidemic communication a la DREAM) but
evaluates a static 8-node broadcast network.  This ablation supplies the
missing data: how much tour quality costs (a) losing a quarter of the
network mid-run, (b) hot-swapping nodes, and (c) replacing neighbour
broadcast with epidemic push-gossip at different fanouts.
"""

import numpy as np

from _common import (
    emit,
    N_RUNS,
    dist_budget_per_node,
    print_banner,
    reference,
    run_dist,
    seeds,
)
from repro.analysis import fmt_pct, format_table, mean_excess_percent

INSTANCE = "fl300"


def _experiment():
    ref, _ = reference(INSTANCE)
    budget = dist_budget_per_node(INSTANCE)
    configs = [
        ("static broadcast (paper)", {}),
        ("2 nodes leave mid-run",
         {"churn": [(budget * 0.4, "leave", 2), (budget * 0.5, "leave", 5)]}),
        ("2 leave + 2 join",
         {"churn": [(budget * 0.4, "leave", 2), (budget * 0.4, "leave", 5),
                    (budget * 0.45, "join", 8), (budget * 0.5, "join", 9)]}),
        ("gossip fanout 1", {"dissemination": "gossip", "gossip_fanout": 1}),
        ("gossip fanout 3", {"dissemination": "gossip", "gossip_fanout": 3}),
    ]
    rows = []
    means = {}
    for label, kwargs in configs:
        lengths = []
        msgs = []
        for s in seeds(9900, N_RUNS):
            res = run_dist(INSTANCE, "random_walk", s, budget=budget,
                           **dict(kwargs))
            lengths.append(res.best_length)
            msgs.append(res.network_stats.tour_messages)
        excess = mean_excess_percent(lengths, ref)
        means[label] = excess
        rows.append((label, int(np.mean(lengths)), fmt_pct(excess),
                     int(np.mean(msgs))))
    return rows, means


def test_ablation_churn_gossip(once):
    rows, means = once(_experiment)
    print_banner(
        f"Ablation: churn and gossip on {INSTANCE} "
        f"(8 initial nodes, avg of {N_RUNS} runs)",
    )
    emit(format_table(
        ["configuration", "mean length", "excess", "tour messages"], rows,
    ))
    emit("\nthe P2P promise: membership changes degrade the network "
         "gracefully, and epidemic dissemination trades messages for "
         "spread speed.")

    # Shape: losing a quarter of the network costs little; gossip-3 is
    # within noise of full broadcast.
    static = means["static broadcast (paper)"]
    assert means["2 nodes leave mid-run"] <= static + 0.6
    assert means["gossip fanout 3"] <= static + 0.4