"""More property-based tests: constructors, backbone, Or-opt, kicks."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.construct import greedy_edge, nearest_neighbor, quick_boruvka
from repro.core.backbone import backbone_edges
from repro.localsearch import or_opt
from repro.localsearch.kicks import KICK_STRATEGIES
from repro.tsp.instance import TSPInstance
from repro.tsp.tour import random_tour

COMMON = dict(deadline=None, suppress_health_check=[HealthCheck.too_slow])


def _instance(seed: int, n: int) -> TSPInstance:
    rng = np.random.default_rng(seed)
    coords = rng.uniform(0, 5000, size=(n, 2))
    coords += np.arange(n)[:, None] * 1e-3
    return TSPInstance(coords=coords, name=f"prop{n}")


@given(st.integers(0, 2**31 - 1), st.integers(6, 50))
@settings(max_examples=25, **COMMON)
def test_constructors_always_valid(seed, n):
    inst = _instance(seed, n)
    for ctor in (quick_boruvka, greedy_edge):
        t = ctor(inst)
        assert t.is_valid()
        assert t.length == t.recompute_length()
    t = nearest_neighbor(inst, start=seed % n)
    assert t.is_valid()


@given(st.integers(0, 2**31 - 1), st.integers(10, 40))
@settings(max_examples=15, **COMMON)
def test_or_opt_invariants(seed, n):
    inst = _instance(seed, n)
    t = random_tour(inst, np.random.default_rng(seed))
    before = t.length
    gain = or_opt(t)
    assert t.is_valid()
    assert gain >= 0
    assert t.length == before - gain == t.recompute_length()


@given(st.integers(0, 2**31 - 1), st.integers(12, 40),
       st.sampled_from(sorted(KICK_STRATEGIES)))
@settings(max_examples=25, **COMMON)
def test_every_kick_strategy_keeps_tour_valid(seed, n, kick_name):
    from repro.localsearch.kicks import apply_double_bridge

    inst = _instance(seed, n)
    rng = np.random.default_rng(seed)
    t = random_tour(inst, rng)
    kick = KICK_STRATEGIES[kick_name]
    for _ in range(3):
        pos = kick(t, rng)
        apply_double_bridge(t, pos)
        assert t.is_valid()
        assert t.length == t.recompute_length()


@given(st.integers(0, 2**31 - 1), st.integers(8, 30),
       st.integers(2, 5))
@settings(max_examples=20, **COMMON)
def test_backbone_monotone_in_support(seed, n, k_tours):
    inst = _instance(seed, n)
    rng = np.random.default_rng(seed)
    tours = [random_tour(inst, rng) for _ in range(k_tours)]
    strict = backbone_edges(tours, min_support=1.0)
    half = backbone_edges(tours, min_support=0.5)
    assert strict <= half
    # Unanimous edges really are in every tour.
    for a, b in strict:
        for t in tours:
            assert (min(a, b), max(a, b)) in t.edge_set()
