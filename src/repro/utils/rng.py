"""Deterministic random-number plumbing.

Every stochastic component in the library accepts either a seed or a
``numpy.random.Generator``.  Distributed runs derive independent per-node
streams with :func:`spawn_rngs`, so an N-node simulation is reproducible
from a single integer seed regardless of scheduling order.
"""

from __future__ import annotations

from typing import Union

import numpy as np

__all__ = ["ensure_rng", "spawn_rngs"]

RngLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Coerce ``None`` / int seed / SeedSequence / Generator to a Generator."""
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, np.random.SeedSequence):
        return np.random.default_rng(rng)
    return np.random.default_rng(rng)


def spawn_rngs(rng: RngLike, k: int) -> list[np.random.Generator]:
    """Derive ``k`` statistically independent child generators.

    Children are derived via ``SeedSequence.spawn`` semantics: using the
    parent afterwards does not perturb the children and vice versa.
    """
    parent = ensure_rng(rng)
    seeds = parent.integers(0, 2**63 - 1, size=k, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
