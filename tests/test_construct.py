"""Tests for tour construction heuristics."""

import numpy as np
import pytest

from repro.bounds import held_karp_exact
from repro.construct import (
    christofides,
    greedy_edge,
    nearest_neighbor,
    quick_boruvka,
    space_filling,
)
from repro.construct.space_filling import hilbert_index
from repro.tsp import generators

CONSTRUCTORS = [quick_boruvka, nearest_neighbor, greedy_edge, space_filling,
                christofides]


class TestAllConstructors:
    @pytest.mark.parametrize("ctor", CONSTRUCTORS)
    def test_valid_tour(self, ctor, small_instance):
        t = ctor(small_instance)
        assert t.is_valid()
        assert t.length == t.recompute_length()

    @pytest.mark.parametrize("ctor", CONSTRUCTORS)
    def test_not_catastrophic(self, ctor):
        # Every constructor must beat 2x the exact optimum on tiny inputs
        # (Christofides guarantees 1.5x; the others are greedy but sane).
        inst = generators.uniform(12, rng=8)
        opt, _ = held_karp_exact(inst)
        t = ctor(inst)
        assert t.length <= 2.0 * opt, ctor.__name__

    @pytest.mark.parametrize("ctor", [quick_boruvka, greedy_edge, space_filling,
                                      christofides])
    def test_deterministic(self, ctor, small_instance):
        a = ctor(small_instance)
        b = ctor(small_instance)
        assert np.array_equal(a.order, b.order)


class TestQuickBoruvka:
    def test_beats_random_by_far(self, small_instance, rng):
        from repro.tsp.tour import random_tour

        qb = quick_boruvka(small_instance)
        rnd = np.mean(
            [random_tour(small_instance, rng).length for _ in range(5)]
        )
        assert qb.length < 0.7 * rnd

    def test_works_on_explicit(self, explicit_instance):
        t = quick_boruvka(explicit_instance, rng=0)
        assert t.is_valid()

    def test_clustered(self, clustered_instance):
        t = quick_boruvka(clustered_instance)
        assert t.is_valid()


class TestNearestNeighbor:
    def test_start_city_respected(self, small_instance):
        t = nearest_neighbor(small_instance, start=17)
        assert t.order[0] == 17

    def test_bad_start_raises(self, small_instance):
        with pytest.raises(ValueError, match="out of range"):
            nearest_neighbor(small_instance, start=10_000)

    def test_greedy_first_step(self, small_instance):
        t = nearest_neighbor(small_instance, start=0)
        d_first = small_instance.dist(0, int(t.order[1]))
        all_d = [small_instance.dist(0, j) for j in range(1, small_instance.n)]
        assert d_first == min(all_d)


class TestGreedyEdge:
    def test_usually_beats_nearest_neighbor(self):
        # Greedy edge matching dominates NN on average; allow one upset.
        wins = 0
        for seed in range(5):
            inst = generators.uniform(80, rng=seed + 100)
            if greedy_edge(inst).length <= nearest_neighbor(inst, start=0).length:
                wins += 1
        assert wins >= 4


class TestSpaceFilling:
    def test_hilbert_index_bijective_on_grid(self):
        xs, ys = np.meshgrid(np.arange(8), np.arange(8))
        idx = hilbert_index(xs.ravel(), ys.ravel(), order=3)
        assert sorted(idx.tolist()) == list(range(64))

    def test_hilbert_adjacent_cells_adjacent_indices(self):
        # Consecutive curve indices are grid neighbours (curve continuity).
        xs, ys = np.meshgrid(np.arange(8), np.arange(8))
        xs, ys = xs.ravel(), ys.ravel()
        idx = hilbert_index(xs, ys, order=3)
        by_index = np.empty((64, 2), dtype=int)
        by_index[idx] = np.stack([xs, ys], axis=1)
        steps = np.abs(np.diff(by_index, axis=0)).sum(axis=1)
        assert np.all(steps == 1)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError, match="range"):
            hilbert_index(np.array([9]), np.array([0]), order=3)

    def test_requires_coords(self, explicit_instance):
        with pytest.raises(ValueError, match="coordinates"):
            space_filling(explicit_instance)


class TestChristofides:
    def test_within_factor_1_5_of_optimum(self):
        for seed in range(3):
            inst = generators.uniform(11, rng=seed + 50)
            opt, _ = held_karp_exact(inst)
            t = christofides(inst)
            # +1% slack for integer rounding of the metric
            assert t.length <= 1.5 * opt * 1.01
