"""Run the distributed algorithm with real OS processes.

The discrete-event simulator is the reference (deterministic, virtual
time); this example shows the same EA-node logic running on the
multiprocessing backend with wall-clock budgets — the shape the paper's
Java/TCP deployment had — and demonstrates its fault tolerance: one
worker is hard-killed mid-run, the topology degenerates around it (its
neighbours cross-link, as in the paper's P2P design), and the survivors
finish normally.

Run:  python examples/real_processes.py
"""

from repro.core.node import NodeConfig
from repro.distributed.mp_backend import run_multiprocessing
from repro.tsp import generators


def main() -> None:
    instance = generators.clustered(150, rng=9)
    print(f"instance: {instance.name}, n={instance.n}")
    print("running 4 worker processes (ring topology) for ~4s wall-clock "
          "each; node 2 will be hard-killed after 1s...")

    result = run_multiprocessing(
        instance,
        budget_seconds=4.0,
        n_nodes=4,
        node_config=NodeConfig(inner_kicks=3),
        topology="ring",
        rng=0,
        kill_at={2: 1.0},  # fault injection: os._exit(1) in the worker
    )

    print(f"\nbest tour length: {result.best_length} "
          f"(node {result.best_node})")
    for node_id, report in sorted(result.node_reports.items()):
        length = result.node_lengths.get(node_id, "-")
        print(f"  node {node_id}: {report.exit_status:>7}  "
              f"length {length}, stopped: {result.reasons[node_id]}, "
              f"iterations {report.iterations}")
    print(f"crashed nodes: {list(result.crashed_nodes)} "
          f"(survivors were rerouted around them)")
    print(f"tour messages dropped on full inboxes: "
          f"{result.dropped_tour_messages}")
    print(f"elapsed: {result.elapsed_seconds:.1f}s wall-clock")

    tour = result.tour(instance)
    assert tour.is_valid()
    print("returned tour verified valid.")


if __name__ == "__main__":
    main()
